// Package serve implements exploration-as-a-service: a long-running
// HTTP daemon (cmd/flexos-serve) that executes exploration requests
// on the shared engine over one process-wide two-tier memo, so many
// callers asking for overlapping slices of the configuration space
// pay for each measurement once.
//
// # Protocol
//
//   - POST /v1/explore with a cli.Request JSON body. The complete
//     form answers one cli.Response document whose Report is
//     byte-identical to what the same request run locally through
//     flexos-explore would print. With "stream": true the answer is
//     NDJSON — one {"line": …} document per measured configuration,
//     mirroring Query.Stream's input-order guarantee, then a final
//     document carrying the Report and Stats.
//   - GET /healthz — liveness.
//   - GET /statsz — serving statistics (flights, coalescing, hit
//     rates, in-flight gauges) as JSON.
//
// # Coalescing
//
// The core mechanism is single-flight request coalescing: concurrent
// requests whose canonical key (Query.CanonicalKey — space hash ⊕
// memo namespace ⊕ constraints ⊕ pruning ⊕ shard) collide attach to
// one in-flight engine run, and every subscriber renders its response
// from the same shared result — byte-identical by construction, and
// proven against the direct-Query oracle in serve_test.go. Requests
// differing only in worker count coalesce too: worker count never
// changes result bytes. Disjoint requests run concurrently under a
// bounded flight budget. A flight is canceled (its context threads
// into the engine's worker pool) only when its last subscriber
// disconnects, and removed from the table the moment it finishes, so
// the table only ever holds work that can still be joined — repeats
// of a finished request re-run the engine against the warm memo
// instead, which re-measures nothing.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"flexos"
	"flexos/internal/cli"
	"flexos/internal/cluster"
	"flexos/internal/explore"
	"flexos/internal/machine"
	"flexos/internal/store"
)

// Config configures a Server.
type Config struct {
	// Workers is the engine worker count for requests that do not name
	// their own (<= 0: GOMAXPROCS). Worker count never changes result
	// bytes, only wall-clock time.
	Workers int
	// MaxFlights bounds how many engine runs execute concurrently
	// (<= 0: GOMAXPROCS). Excess flights queue; their subscribers wait.
	MaxFlights int
	// CacheDir, when non-empty, backs the process-wide memo with a
	// persistent result store: measurements survive daemon restarts.
	// CacheReadOnly opens it load-only.
	CacheDir      string
	CacheReadOnly bool
	// Cluster, when non-nil, makes this daemon a cluster coordinator:
	// workers register on /v1/cluster/join, and eligible exploration
	// requests gather shard records from the fleet before the local
	// re-rank (see runFlight). The server installs the coordinator's
	// inline fallback and starts its failure detector.
	//
	// Budgeted (measure_budget > 0) and delta-only requests never fan
	// out: a budgeted run decides strictly more on a warm memo than a
	// cold one would, and a delta re-exploration diffs against this
	// node's store — both are node-local semantics, served locally.
	Cluster *cluster.Coordinator
	// SelfURL is the daemon's own advertised base URL, when known. A
	// coordinator refuses a worker joining under this URL: dispatching
	// to yourself coalesces the sub-request onto the flight that
	// issued it — a deadlock, not a fleet.
	SelfURL string
}

// Stats is the /statsz document.
type Stats struct {
	// UptimeMs is the time since New.
	UptimeMs int64 `json:"uptime_ms"`
	// Requests counts exploration requests accepted; Coalesced those
	// that attached to an already-in-flight run instead of starting
	// their own; FlightsStarted the engine passes actually begun.
	Requests       int64 `json:"requests"`
	Coalesced      int64 `json:"coalesced"`
	FlightsStarted int64 `json:"flights_started"`
	// InFlight and Subscribers are gauges: engine runs currently
	// executing (or queued) and callers currently attached to them.
	InFlight    int `json:"in_flight"`
	Subscribers int `json:"subscribers"`
	// Completed / Failed / Canceled count finished flights by outcome
	// (a run that completed but satisfied no constraint counts as
	// completed: it produced a full report).
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// Evaluated and MemoHits accumulate the per-run statistics across
	// completed flights; HitRatePct is their ratio — how much of the
	// served work the two-tier memo absorbed.
	Evaluated  int64   `json:"evaluated"`
	MemoHits   int64   `json:"memo_hits"`
	HitRatePct float64 `json:"hit_rate_pct"`
	// MemoEntries is the in-memory tier's current size; Store the
	// persistent tier's statistics when one is configured.
	MemoEntries int          `json:"memo_entries"`
	Store       *store.Stats `json:"store,omitempty"`
	// StoreFlushErrors counts failed post-flight store flushes (the
	// cache degrades; serving continues).
	StoreFlushErrors int64 `json:"store_flush_errors,omitempty"`
	// SyncLogLen is the store-sync log length — the upper bound of a
	// peer's pull cursor. RecordsIngested counts records learned from
	// peers (gathered shards, pulled pages); IngestConflicts those
	// dropped because they disagreed with a local value; PullPages and
	// PullErrors describe this node's own puller.
	SyncLogLen      int   `json:"sync_log_len"`
	RecordsIngested int64 `json:"records_ingested"`
	IngestConflicts int64 `json:"ingest_conflicts,omitempty"`
	PullPages       int64 `json:"pull_pages,omitempty"`
	PullErrors      int64 `json:"pull_errors,omitempty"`
	// ClusterDegraded counts coordinator flights that fell back to a
	// plain local run because the gather itself failed.
	ClusterDegraded int64 `json:"cluster_degraded,omitempty"`
	// Cluster is the coordinator's fleet view — membership and the
	// per-worker dispatch/re-dispatch/failure counters — when this
	// daemon coordinates one.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
	// RequestLatency summarizes wall-clock serving latency per explore
	// request (decode through final byte), over a sliding window of
	// recent requests. A coalesced subscriber counts like any other:
	// what it waited is what it waited.
	RequestLatency LatencyStats `json:"request_latency"`
}

// LatencyStats is the /statsz latency section: nearest-rank
// percentiles (the machine.LatencySampler definition) in milliseconds
// over the recent-request window, plus the all-time request count.
type LatencyStats struct {
	Count  int64   `json:"count"`
	Window int     `json:"window"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// latencyWindow keeps the last latWindowSize request durations (ns) in
// a ring. Percentiles over a bounded window track "lately" rather than
// "since boot", and the memory cost is fixed.
const latWindowSize = 4096

type latencyWindow struct {
	mu    sync.Mutex
	buf   [latWindowSize]uint64
	next  int
	n     int
	total int64
}

func (lw *latencyWindow) record(d time.Duration) {
	lw.mu.Lock()
	lw.buf[lw.next] = uint64(d.Nanoseconds())
	lw.next = (lw.next + 1) % latWindowSize
	if lw.n < latWindowSize {
		lw.n++
	}
	lw.total++
	lw.mu.Unlock()
}

// stats reduces the window with the shared nearest-rank sampler.
func (lw *latencyWindow) stats() LatencyStats {
	lw.mu.Lock()
	var smp machine.LatencySampler
	for i := 0; i < lw.n; i++ {
		smp.Record(lw.buf[i])
	}
	st := LatencyStats{Count: lw.total, Window: lw.n}
	lw.mu.Unlock()
	ms := func(ns uint64) float64 { return float64(ns) / 1e6 }
	st.P50Ms = ms(smp.Percentile(50))
	st.P95Ms = ms(smp.Percentile(95))
	st.P99Ms = ms(smp.Percentile(99))
	st.MaxMs = ms(smp.Max())
	return st
}

// Server is the exploration service. Create it with New, serve it as
// an http.Handler, and Close it to cancel in-flight work and flush
// the persistent store. Safe for concurrent use.
type Server struct {
	cfg   Config
	memo  *explore.Memo
	st    *store.Store
	sync  *syncLog
	start time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc
	sem        chan struct{}
	wg         sync.WaitGroup

	mu      sync.Mutex
	flights map[string]*flight
	closed  bool
	stats   Stats
	lat     latencyWindow

	// Test seams (package-internal): onFlightStart runs on the flight
	// goroutine after the flight is admitted, before the engine pass;
	// onDecided runs once per streamed measurement of every pass.
	onFlightStart func(key string)
	onDecided     func(key string)
}

// flight is one in-flight (or just-finished) engine pass, shared by
// every subscriber whose request coalesced onto it.
type flight struct {
	key          string
	scenarioMode bool
	ns           string      // memo namespace (canonical across subscribers)
	creq         cli.Request // the first subscriber's request (canonical-equal to all)
	ctx          context.Context
	cancel       context.CancelFunc

	mu      sync.Mutex
	lines   []string      // streamed measurements, in Query.Stream order
	notify  chan struct{} // closed and replaced on every append
	subs    int
	records []cli.Record // partial-result codec, rendered on demand

	done chan struct{} // closed after res/err are set
	res  *flexos.ExploreResult
	err  error
}

// appendLine publishes one streamed measurement to the subscribers.
func (f *flight) appendLine(line string) {
	f.mu.Lock()
	f.lines = append(f.lines, line)
	close(f.notify)
	f.notify = make(chan struct{})
	f.mu.Unlock()
}

// snapshot returns the lines decided since from, and the channel that
// signals the next append.
func (f *flight) snapshot(from int) ([]string, chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lines[from:], f.notify
}

// recordsOnce renders the flight's partial-result codec on first
// demand (a coordinator asking include_records), caching it for the
// other subscribers. Only valid after the flight is done.
func (f *flight) recordsOnce() []cli.Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.records == nil && f.res != nil {
		f.records = cli.RecordsOf(f.ns, f.res)
	}
	return f.records
}

// New creates a Server, opening the persistent store when configured.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxFlights <= 0 {
		cfg.MaxFlights = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:     cfg,
		start:   time.Now(),
		sem:     make(chan struct{}, cfg.MaxFlights),
		flights: make(map[string]*flight),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if cfg.CacheDir != "" {
		var (
			st  *store.Store
			err error
		)
		if cfg.CacheReadOnly {
			st, err = store.OpenReadOnly(cfg.CacheDir)
		} else {
			st, err = store.Open(cfg.CacheDir)
		}
		if err != nil {
			return nil, err
		}
		s.st = st
	}
	// The sync log sits between the memo and the store: it sees every
	// record the daemon learns (write-through, open, peer ingest) and
	// is what /v1/store/pull pages out to other nodes.
	s.sync = newSyncLog(s.st, cfg.CacheReadOnly)
	s.memo = explore.NewBackedMemo(s.sync)
	if cfg.Cluster != nil {
		cfg.Cluster.SetLocal(s.localRecords)
		cfg.Cluster.StartHealth(s.baseCtx)
	}
	return s, nil
}

// localRecords is the coordinator's inline fallback: run the shard
// sub-request on this node's own engine (through the shared memo, so
// fresh measurements enter the sync log) and answer the partial-result
// codec. ErrNoFeasible is a complete answer, not a failure.
func (s *Server) localRecords(ctx context.Context, sub cli.Request) ([]cli.Record, error) {
	q, info, err := sub.Build()
	if err != nil {
		return nil, err
	}
	q.Workers(s.cfg.Workers).Memo(s.memo)
	res, err := q.Run(ctx)
	if err != nil && !errors.Is(err, flexos.ErrNoFeasible) {
		return nil, err
	}
	return cli.RecordsOf(info.Namespace, res), nil
}

// Abort stops accepting new requests and cancels every in-flight
// engine run, without waiting: subscribers receive their cancellation
// responses promptly, which is what lets an HTTP graceful drain
// finish fast instead of riding out its whole grace period behind a
// long exploration. Close completes the shutdown.
func (s *Server) Abort() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.baseCancel()
}

// Close aborts (if Abort has not run already), waits for the flight
// goroutines, and flushes and closes the persistent store. The first
// store error is returned.
func (s *Server) Close() error {
	s.Abort()
	s.wg.Wait()
	if s.st != nil {
		return s.st.Close()
	}
	return nil
}

// Stats snapshots the serving statistics.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	subs := 0
	for _, f := range s.flights {
		f.mu.Lock()
		subs += f.subs
		f.mu.Unlock()
	}
	s.mu.Unlock()
	st.Subscribers = subs
	st.UptimeMs = time.Since(s.start).Milliseconds()
	if st.Evaluated+st.MemoHits > 0 {
		st.HitRatePct = 100 * float64(st.MemoHits) / float64(st.Evaluated+st.MemoHits)
	}
	st.MemoEntries = s.memo.Len()
	st.SyncLogLen = s.sync.len()
	if s.st != nil {
		ss := s.st.Stats()
		st.Store = &ss
	}
	if s.cfg.Cluster != nil {
		st.Cluster = s.cfg.Cluster.Stats()
	}
	st.RequestLatency = s.lat.stats()
	return st
}

// ServeHTTP routes the service endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		s.handleHealthz(w, r)
	case "/statsz":
		s.handleStatsz(w, r)
	case cli.ExplorePath:
		s.handleExplore(w, r)
	case cli.JoinPath:
		s.handleJoin(w, r)
	case cli.MembersPath:
		s.handleMembers(w, r)
	case cli.PullPath:
		s.handlePull(w, r)
	default:
		http.NotFound(w, r)
	}
}

// handleJoin registers a worker with the coordinator (idempotent; a
// worker heartbeats re-joins). Plain daemons answer 404: joining is a
// coordinator capability.
func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Cluster == nil {
		http.Error(w, "not a coordinator", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4096))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read join request: %v", err))
		return
	}
	var jr cli.JoinRequest
	if err := json.Unmarshal(data, &jr); err != nil || jr.URL == "" {
		writeError(w, http.StatusBadRequest, "join body must be {\"url\": \"http://worker:port\"}")
		return
	}
	u, err := url.Parse(jr.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("join url %q is not an absolute http(s) base URL", jr.URL))
		return
	}
	worker := strings.TrimSuffix(jr.URL, "/")
	if s.cfg.SelfURL != "" && worker == strings.TrimSuffix(s.cfg.SelfURL, "/") {
		writeError(w, http.StatusBadRequest, "a coordinator cannot join itself as a worker")
		return
	}
	s.cfg.Cluster.Join(worker)
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "members": len(s.cfg.Cluster.Stats().Workers)})
}

// handleMembers reports the coordinator's fleet view.
func (s *Server) handleMembers(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Cluster == nil {
		http.Error(w, "not a coordinator", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Cluster.Stats())
}

// handlePull serves one page of the store-sync log to a peer.
func (s *Server) handlePull(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	since, err := strconv.Atoi(q.Get("since"))
	if q.Get("since") != "" && err != nil {
		writeError(w, http.StatusBadRequest, "since must be an integer cursor")
		return
	}
	writeJSON(w, http.StatusOK, s.sync.page(q.Get("gen"), since))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "uptime_ms": time.Since(s.start).Milliseconds()})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, cli.MaxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read request: %v", err))
		return
	}
	// The query belongs to this subscriber: the flight shares the
	// engine pass, but rendering (pareto, verbose, constraint order)
	// is per-request, carried by info.
	req, q, info, err := cli.DecodeRequestQuery(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Per-request serving latency: from a validly decoded request to
	// the end of its response, whatever the outcome — what a load
	// generator on the other side observes.
	defer func(t0 time.Time) { s.lat.record(time.Since(t0)) }(time.Now())
	key := q.CanonicalKey()

	f, coalesced, err := s.attach(key, q, info, &req)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer s.detach(f)
	if coalesced {
		w.Header().Set("X-Flexos-Coalesced", "true")
	}

	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	if req.Stream {
		s.respondStream(w, ctx, f, &req, info)
	} else {
		s.respondComplete(w, ctx, f, &req, info)
	}
}

// attach joins the request to the in-flight run for key, starting one
// when none exists.
func (s *Server) attach(key string, q *flexos.Query, info *cli.BuildInfo, req *cli.Request) (*flight, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, errors.New("serve: server is shutting down")
	}
	s.stats.Requests++
	if f, ok := s.flights[key]; ok {
		f.mu.Lock()
		f.subs++
		f.mu.Unlock()
		s.stats.Coalesced++
		return f, true, nil
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	f := &flight{
		key:          key,
		scenarioMode: info.ScenarioMode,
		ns:           info.Namespace,
		creq:         *req,
		ctx:          ctx,
		cancel:       cancel,
		notify:       make(chan struct{}),
		done:         make(chan struct{}),
		subs:         1,
	}
	s.flights[key] = f
	s.stats.InFlight++
	if req.Workers <= 0 {
		q.Workers(s.cfg.Workers)
	}
	q.Memo(s.memo)
	s.wg.Add(1)
	go s.runFlight(f, q)
	return f, false, nil
}

// detach drops one subscriber; the last one out cancels a run nobody
// is waiting for (the engine winds its worker pool down promptly).
func (s *Server) detach(f *flight) {
	s.mu.Lock()
	f.mu.Lock()
	f.subs--
	orphaned := f.subs == 0
	f.mu.Unlock()
	if orphaned {
		if cur, ok := s.flights[f.key]; ok && cur == f {
			delete(s.flights, f.key)
		}
	}
	s.mu.Unlock()
	if orphaned {
		f.cancel()
	}
}

// runFlight executes one engine pass under the flight budget and
// publishes its outcome.
func (s *Server) runFlight(f *flight, q *flexos.Query) {
	defer s.wg.Done()
	defer f.cancel()

	finish := func(res *flexos.ExploreResult, err error) {
		s.mu.Lock()
		if cur, ok := s.flights[f.key]; ok && cur == f {
			delete(s.flights, f.key)
		}
		s.stats.InFlight--
		switch {
		case err == nil || errors.Is(err, flexos.ErrNoFeasible):
			s.stats.Completed++
			if res != nil {
				s.stats.Evaluated += int64(res.Evaluated)
				s.stats.MemoHits += int64(res.MemoHits)
			}
		case errors.Is(err, flexos.ErrCanceled):
			s.stats.Canceled++
		default:
			s.stats.Failed++
		}
		s.mu.Unlock()
		f.res, f.err = res, err
		close(f.done)
	}

	// The flight budget: wait for a slot unless every subscriber has
	// already walked away (or the server is closing).
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-f.ctx.Done():
		finish(nil, fmt.Errorf("serve: %w", explore.ErrCanceled))
		return
	}

	s.mu.Lock()
	s.stats.FlightsStarted++
	s.mu.Unlock()
	if s.onFlightStart != nil {
		s.onFlightStart(f.key)
	}

	// Coordinator path: gather the shards' partial results from the
	// fleet and replay them into the sync log (and through it, the
	// memo's backing) BEFORE the local pass. The pass below then runs
	// fully warm — every configuration the workers measured is a
	// backing hit, indistinguishable from a fresh measurement — so the
	// streamed lines and report are byte-identical to a single-node
	// run, and anything the cluster failed to deliver (a dead worker,
	// a dropped conflict) is simply measured here, same bytes either
	// way. Budgeted and delta-only requests skip the fan-out: their
	// semantics are node-local (see Config.Cluster).
	if c := s.cfg.Cluster; c != nil && f.creq.MeasureBudget == 0 && !f.creq.DeltaOnly {
		recs, gerr := c.Gather(f.ctx, f.creq)
		if gerr == nil {
			added, conflicts := s.sync.ingest(recs)
			s.mu.Lock()
			s.stats.RecordsIngested += int64(added)
			s.stats.IngestConflicts += int64(conflicts)
			s.mu.Unlock()
		} else if f.ctx.Err() == nil {
			s.mu.Lock()
			s.stats.ClusterDegraded++
			s.mu.Unlock()
		}
	}

	// Always run streaming: the decided lines are shared state every
	// streaming subscriber replays and then follows, whatever moment
	// it attached, so all of them see the same byte sequence.
	seq, final := q.Stream(f.ctx)
	for cfg, m := range seq {
		f.appendLine(cli.StreamLine(f.scenarioMode, cfg, m))
		if s.onDecided != nil {
			s.onDecided(f.key)
		}
	}
	res, err := final()
	if s.st != nil && !s.cfg.CacheReadOnly {
		if ferr := s.st.Flush(); ferr != nil {
			s.mu.Lock()
			s.stats.StoreFlushErrors++
			s.mu.Unlock()
		}
	}
	finish(res, err)
}

// render builds the subscriber's view of a finished flight. The
// engine pass is shared; rendering (title, constraint order, pareto,
// verbose) belongs to each subscriber's own request — identical
// requests therefore render identical bytes.
func render(f *flight, req *cli.Request, info *cli.BuildInfo) (cli.Response, int) {
	noFeasible := errors.Is(f.err, flexos.ErrNoFeasible)
	if f.err != nil && !noFeasible {
		status := http.StatusInternalServerError
		if errors.Is(f.err, flexos.ErrCanceled) {
			status = http.StatusServiceUnavailable
		}
		return cli.Response{Key: f.key, Error: f.err.Error()}, status
	}
	st := cli.StatsOf(f.res)
	resp := cli.Response{
		Key:    f.key,
		Report: cli.RenderReport(info.Title, f.res, info.Constraints, info.ScenarioMode, req.Pareto, req.Verbose, noFeasible),
		Stats:  &st,
	}
	if req.IncludeRecords {
		resp.Records = f.recordsOnce()
	}
	return resp, http.StatusOK
}

func (s *Server) respondComplete(w http.ResponseWriter, ctx context.Context, f *flight, req *cli.Request, info *cli.BuildInfo) {
	select {
	case <-f.done:
	case <-ctx.Done():
		writeError(w, http.StatusGatewayTimeout, "request canceled or timed out while the exploration was in flight")
		return
	}
	resp, status := render(f, req, info)
	writeJSON(w, status, resp)
}

func (s *Server) respondStream(w http.ResponseWriter, ctx context.Context, f *flight, req *cli.Request, info *cli.BuildInfo) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev cli.Response) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	next := 0
	for {
		lines, notify := f.snapshot(next)
		for _, line := range lines {
			next++
			if !emit(cli.Response{Line: line}) {
				return
			}
		}
		select {
		case <-f.done:
			// Everything published happens-before done: one last drain,
			// then the final document.
			lines, _ := f.snapshot(next)
			for _, line := range lines {
				next++
				if !emit(cli.Response{Line: line}) {
					return
				}
			}
			resp, _ := render(f, req, info)
			emit(resp)
			return
		case <-notify:
		case <-ctx.Done():
			emit(cli.Response{Key: f.key, Error: "request canceled or timed out while the exploration was in flight"})
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, cli.Response{Error: msg})
}
