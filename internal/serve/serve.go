// Package serve implements exploration-as-a-service: a long-running
// HTTP daemon (cmd/flexos-serve) that executes exploration requests
// on the shared engine over one process-wide two-tier memo, so many
// callers asking for overlapping slices of the configuration space
// pay for each measurement once.
//
// # Protocol
//
//   - POST /v1/explore with a cli.Request JSON body. The complete
//     form answers one cli.Response document whose Report is
//     byte-identical to what the same request run locally through
//     flexos-explore would print. With "stream": true the answer is
//     NDJSON — one {"line": …} document per measured configuration,
//     mirroring Query.Stream's input-order guarantee, then a final
//     document carrying the Report and Stats.
//   - GET /healthz — liveness.
//   - GET /statsz — serving statistics (flights, coalescing, hit
//     rates, in-flight gauges) as JSON.
//
// # Coalescing
//
// The core mechanism is single-flight request coalescing: concurrent
// requests whose canonical key (Query.CanonicalKey — space hash ⊕
// memo namespace ⊕ constraints ⊕ pruning ⊕ shard) collide attach to
// one in-flight engine run, and every subscriber renders its response
// from the same shared result — byte-identical by construction, and
// proven against the direct-Query oracle in serve_test.go. Requests
// differing only in worker count coalesce too: worker count never
// changes result bytes. Disjoint requests run concurrently under a
// bounded flight budget. A flight is canceled (its context threads
// into the engine's worker pool) only when its last subscriber
// disconnects, and removed from the table the moment it finishes, so
// the table only ever holds work that can still be joined — repeats
// of a finished request re-run the engine against the warm memo
// instead, which re-measures nothing.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"flexos"
	"flexos/internal/cli"
	"flexos/internal/explore"
	"flexos/internal/store"
)

// Config configures a Server.
type Config struct {
	// Workers is the engine worker count for requests that do not name
	// their own (<= 0: GOMAXPROCS). Worker count never changes result
	// bytes, only wall-clock time.
	Workers int
	// MaxFlights bounds how many engine runs execute concurrently
	// (<= 0: GOMAXPROCS). Excess flights queue; their subscribers wait.
	MaxFlights int
	// CacheDir, when non-empty, backs the process-wide memo with a
	// persistent result store: measurements survive daemon restarts.
	// CacheReadOnly opens it load-only.
	CacheDir      string
	CacheReadOnly bool
}

// Stats is the /statsz document.
type Stats struct {
	// UptimeMs is the time since New.
	UptimeMs int64 `json:"uptime_ms"`
	// Requests counts exploration requests accepted; Coalesced those
	// that attached to an already-in-flight run instead of starting
	// their own; FlightsStarted the engine passes actually begun.
	Requests       int64 `json:"requests"`
	Coalesced      int64 `json:"coalesced"`
	FlightsStarted int64 `json:"flights_started"`
	// InFlight and Subscribers are gauges: engine runs currently
	// executing (or queued) and callers currently attached to them.
	InFlight    int `json:"in_flight"`
	Subscribers int `json:"subscribers"`
	// Completed / Failed / Canceled count finished flights by outcome
	// (a run that completed but satisfied no constraint counts as
	// completed: it produced a full report).
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// Evaluated and MemoHits accumulate the per-run statistics across
	// completed flights; HitRatePct is their ratio — how much of the
	// served work the two-tier memo absorbed.
	Evaluated  int64   `json:"evaluated"`
	MemoHits   int64   `json:"memo_hits"`
	HitRatePct float64 `json:"hit_rate_pct"`
	// MemoEntries is the in-memory tier's current size; Store the
	// persistent tier's statistics when one is configured.
	MemoEntries int          `json:"memo_entries"`
	Store       *store.Stats `json:"store,omitempty"`
	// StoreFlushErrors counts failed post-flight store flushes (the
	// cache degrades; serving continues).
	StoreFlushErrors int64 `json:"store_flush_errors,omitempty"`
}

// Server is the exploration service. Create it with New, serve it as
// an http.Handler, and Close it to cancel in-flight work and flush
// the persistent store. Safe for concurrent use.
type Server struct {
	cfg   Config
	memo  *explore.Memo
	st    *store.Store
	start time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc
	sem        chan struct{}
	wg         sync.WaitGroup

	mu      sync.Mutex
	flights map[string]*flight
	closed  bool
	stats   Stats

	// Test seams (package-internal): onFlightStart runs on the flight
	// goroutine after the flight is admitted, before the engine pass;
	// onDecided runs once per streamed measurement of every pass.
	onFlightStart func(key string)
	onDecided     func(key string)
}

// flight is one in-flight (or just-finished) engine pass, shared by
// every subscriber whose request coalesced onto it.
type flight struct {
	key          string
	scenarioMode bool
	ctx          context.Context
	cancel       context.CancelFunc

	mu     sync.Mutex
	lines  []string      // streamed measurements, in Query.Stream order
	notify chan struct{} // closed and replaced on every append
	subs   int

	done chan struct{} // closed after res/err are set
	res  *flexos.ExploreResult
	err  error
}

// appendLine publishes one streamed measurement to the subscribers.
func (f *flight) appendLine(line string) {
	f.mu.Lock()
	f.lines = append(f.lines, line)
	close(f.notify)
	f.notify = make(chan struct{})
	f.mu.Unlock()
}

// snapshot returns the lines decided since from, and the channel that
// signals the next append.
func (f *flight) snapshot(from int) ([]string, chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lines[from:], f.notify
}

// New creates a Server, opening the persistent store when configured.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxFlights <= 0 {
		cfg.MaxFlights = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:     cfg,
		start:   time.Now(),
		sem:     make(chan struct{}, cfg.MaxFlights),
		flights: make(map[string]*flight),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if cfg.CacheDir != "" {
		var (
			st  *store.Store
			err error
		)
		if cfg.CacheReadOnly {
			st, err = store.OpenReadOnly(cfg.CacheDir)
		} else {
			st, err = store.Open(cfg.CacheDir)
		}
		if err != nil {
			return nil, err
		}
		s.st = st
		s.memo = explore.NewBackedMemo(st)
	} else {
		s.memo = explore.NewMemo()
	}
	return s, nil
}

// Abort stops accepting new requests and cancels every in-flight
// engine run, without waiting: subscribers receive their cancellation
// responses promptly, which is what lets an HTTP graceful drain
// finish fast instead of riding out its whole grace period behind a
// long exploration. Close completes the shutdown.
func (s *Server) Abort() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.baseCancel()
}

// Close aborts (if Abort has not run already), waits for the flight
// goroutines, and flushes and closes the persistent store. The first
// store error is returned.
func (s *Server) Close() error {
	s.Abort()
	s.wg.Wait()
	if s.st != nil {
		return s.st.Close()
	}
	return nil
}

// Stats snapshots the serving statistics.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	subs := 0
	for _, f := range s.flights {
		f.mu.Lock()
		subs += f.subs
		f.mu.Unlock()
	}
	s.mu.Unlock()
	st.Subscribers = subs
	st.UptimeMs = time.Since(s.start).Milliseconds()
	if st.Evaluated+st.MemoHits > 0 {
		st.HitRatePct = 100 * float64(st.MemoHits) / float64(st.Evaluated+st.MemoHits)
	}
	st.MemoEntries = s.memo.Len()
	if s.st != nil {
		ss := s.st.Stats()
		st.Store = &ss
	}
	return st
}

// ServeHTTP routes the service endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		s.handleHealthz(w, r)
	case "/statsz":
		s.handleStatsz(w, r)
	case cli.ExplorePath:
		s.handleExplore(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "uptime_ms": time.Since(s.start).Milliseconds()})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, cli.MaxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read request: %v", err))
		return
	}
	// The query belongs to this subscriber: the flight shares the
	// engine pass, but rendering (pareto, verbose, constraint order)
	// is per-request, carried by info.
	req, q, info, err := cli.DecodeRequestQuery(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := q.CanonicalKey()

	f, coalesced, err := s.attach(key, q, info, req.Workers)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer s.detach(f)
	if coalesced {
		w.Header().Set("X-Flexos-Coalesced", "true")
	}

	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	if req.Stream {
		s.respondStream(w, ctx, f, &req, info)
	} else {
		s.respondComplete(w, ctx, f, &req, info)
	}
}

// attach joins the request to the in-flight run for key, starting one
// when none exists.
func (s *Server) attach(key string, q *flexos.Query, info *cli.BuildInfo, workers int) (*flight, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, errors.New("serve: server is shutting down")
	}
	s.stats.Requests++
	if f, ok := s.flights[key]; ok {
		f.mu.Lock()
		f.subs++
		f.mu.Unlock()
		s.stats.Coalesced++
		return f, true, nil
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	f := &flight{
		key:          key,
		scenarioMode: info.ScenarioMode,
		ctx:          ctx,
		cancel:       cancel,
		notify:       make(chan struct{}),
		done:         make(chan struct{}),
		subs:         1,
	}
	s.flights[key] = f
	s.stats.InFlight++
	if workers <= 0 {
		q.Workers(s.cfg.Workers)
	}
	q.Memo(s.memo)
	s.wg.Add(1)
	go s.runFlight(f, q)
	return f, false, nil
}

// detach drops one subscriber; the last one out cancels a run nobody
// is waiting for (the engine winds its worker pool down promptly).
func (s *Server) detach(f *flight) {
	s.mu.Lock()
	f.mu.Lock()
	f.subs--
	orphaned := f.subs == 0
	f.mu.Unlock()
	if orphaned {
		if cur, ok := s.flights[f.key]; ok && cur == f {
			delete(s.flights, f.key)
		}
	}
	s.mu.Unlock()
	if orphaned {
		f.cancel()
	}
}

// runFlight executes one engine pass under the flight budget and
// publishes its outcome.
func (s *Server) runFlight(f *flight, q *flexos.Query) {
	defer s.wg.Done()
	defer f.cancel()

	finish := func(res *flexos.ExploreResult, err error) {
		s.mu.Lock()
		if cur, ok := s.flights[f.key]; ok && cur == f {
			delete(s.flights, f.key)
		}
		s.stats.InFlight--
		switch {
		case err == nil || errors.Is(err, flexos.ErrNoFeasible):
			s.stats.Completed++
			if res != nil {
				s.stats.Evaluated += int64(res.Evaluated)
				s.stats.MemoHits += int64(res.MemoHits)
			}
		case errors.Is(err, flexos.ErrCanceled):
			s.stats.Canceled++
		default:
			s.stats.Failed++
		}
		s.mu.Unlock()
		f.res, f.err = res, err
		close(f.done)
	}

	// The flight budget: wait for a slot unless every subscriber has
	// already walked away (or the server is closing).
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-f.ctx.Done():
		finish(nil, fmt.Errorf("serve: %w", explore.ErrCanceled))
		return
	}

	s.mu.Lock()
	s.stats.FlightsStarted++
	s.mu.Unlock()
	if s.onFlightStart != nil {
		s.onFlightStart(f.key)
	}

	// Always run streaming: the decided lines are shared state every
	// streaming subscriber replays and then follows, whatever moment
	// it attached, so all of them see the same byte sequence.
	seq, final := q.Stream(f.ctx)
	for cfg, m := range seq {
		f.appendLine(cli.StreamLine(f.scenarioMode, cfg, m))
		if s.onDecided != nil {
			s.onDecided(f.key)
		}
	}
	res, err := final()
	if s.st != nil && !s.cfg.CacheReadOnly {
		if ferr := s.st.Flush(); ferr != nil {
			s.mu.Lock()
			s.stats.StoreFlushErrors++
			s.mu.Unlock()
		}
	}
	finish(res, err)
}

// render builds the subscriber's view of a finished flight. The
// engine pass is shared; rendering (title, constraint order, pareto,
// verbose) belongs to each subscriber's own request — identical
// requests therefore render identical bytes.
func render(f *flight, req *cli.Request, info *cli.BuildInfo) (cli.Response, int) {
	noFeasible := errors.Is(f.err, flexos.ErrNoFeasible)
	if f.err != nil && !noFeasible {
		status := http.StatusInternalServerError
		if errors.Is(f.err, flexos.ErrCanceled) {
			status = http.StatusServiceUnavailable
		}
		return cli.Response{Key: f.key, Error: f.err.Error()}, status
	}
	st := cli.StatsOf(f.res)
	return cli.Response{
		Key:    f.key,
		Report: cli.RenderReport(info.Title, f.res, info.Constraints, info.ScenarioMode, req.Pareto, req.Verbose, noFeasible),
		Stats:  &st,
	}, http.StatusOK
}

func (s *Server) respondComplete(w http.ResponseWriter, ctx context.Context, f *flight, req *cli.Request, info *cli.BuildInfo) {
	select {
	case <-f.done:
	case <-ctx.Done():
		writeError(w, http.StatusGatewayTimeout, "request canceled or timed out while the exploration was in flight")
		return
	}
	resp, status := render(f, req, info)
	writeJSON(w, status, resp)
}

func (s *Server) respondStream(w http.ResponseWriter, ctx context.Context, f *flight, req *cli.Request, info *cli.BuildInfo) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev cli.Response) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	next := 0
	for {
		lines, notify := f.snapshot(next)
		for _, line := range lines {
			next++
			if !emit(cli.Response{Line: line}) {
				return
			}
		}
		select {
		case <-f.done:
			// Everything published happens-before done: one last drain,
			// then the final document.
			lines, _ := f.snapshot(next)
			for _, line := range lines {
				next++
				if !emit(cli.Response{Line: line}) {
					return
				}
			}
			resp, _ := render(f, req, info)
			emit(resp)
			return
		case <-notify:
		case <-ctx.Done():
			emit(cli.Response{Key: f.key, Error: "request canceled or timed out while the exploration was in flight"})
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, cli.Response{Error: msg})
}
