package serve

import (
	"context"
	"fmt"
	"testing"
	"time"

	"flexos"
	"flexos/internal/cli"
)

func rec(i int) cli.Record {
	return cli.Record{
		Key:     fmt.Sprintf("ns\x00key-%d", i),
		Metrics: flexos.Metrics{Throughput: float64(i + 1)},
	}
}

func TestSyncLogIngestDedupAndConflict(t *testing.T) {
	l := newSyncLog(nil, false)
	added, conflicts := l.ingest([]cli.Record{rec(0), rec(1), rec(2)})
	if added != 3 || conflicts != 0 {
		t.Fatalf("fresh ingest: added=%d conflicts=%d", added, conflicts)
	}
	if l.len() != 3 {
		t.Fatalf("log length %d, want 3", l.len())
	}

	// Identical duplicates are no-ops.
	added, conflicts = l.ingest([]cli.Record{rec(1), rec(2)})
	if added != 0 || conflicts != 0 {
		t.Fatalf("duplicate ingest: added=%d conflicts=%d", added, conflicts)
	}

	// A disagreeing duplicate is counted and dropped: local wins.
	bad := rec(1)
	bad.Metrics.Throughput = 999
	added, conflicts = l.ingest([]cli.Record{bad})
	if added != 0 || conflicts != 1 {
		t.Fatalf("conflicting ingest: added=%d conflicts=%d", added, conflicts)
	}
	if m, ok := l.Load(rec(1).Key); !ok || m != rec(1).Metrics {
		t.Fatalf("conflict overwrote the local value: %v %v", m, ok)
	}
	if l.len() != 3 {
		t.Fatalf("conflict grew the log: %d", l.len())
	}
}

func TestSyncLogBackingWriteThrough(t *testing.T) {
	l := newSyncLog(nil, false)
	l.Store("k", flexos.Metrics{Throughput: 7})
	if m, ok := l.Load("k"); !ok || m.Throughput != 7 {
		t.Fatalf("load after store: %v %v", m, ok)
	}
	// First value wins, like the persistent store.
	l.Store("k", flexos.Metrics{Throughput: 8})
	if m, _ := l.Load("k"); m.Throughput != 7 {
		t.Fatalf("second store overwrote: %v", m)
	}
	if l.len() != 1 {
		t.Fatalf("log length %d, want 1", l.len())
	}
}

func TestSyncLogPageCursorAndGeneration(t *testing.T) {
	l := newSyncLog(nil, false)
	for i := 0; i < 5; i++ {
		l.Store(rec(i).Key, rec(i).Metrics)
	}

	// A first pull (empty gen) starts at the head.
	pg := l.page("", 3)
	if pg.Gen != l.gen || pg.Cursor != 5 || pg.More || len(pg.Records) != 5 {
		t.Fatalf("first pull: %+v", pg)
	}
	for i, r := range pg.Records {
		if r != rec(i) {
			t.Fatalf("record %d: %+v, want %+v", i, r, rec(i))
		}
	}

	// A matching generation resumes from the cursor.
	l.Store("late", flexos.Metrics{Throughput: 100})
	pg2 := l.page(pg.Gen, pg.Cursor)
	if len(pg2.Records) != 1 || pg2.Records[0].Key != "late" || pg2.Cursor != 6 {
		t.Fatalf("incremental pull: %+v", pg2)
	}

	// A stale generation or absurd cursor resets to the head.
	if pg := l.page("stale-gen", 6); pg.Cursor != 6 || len(pg.Records) != 6 {
		t.Fatalf("stale-gen pull did not reset: %+v", pg)
	}
	if pg := l.page(l.gen, 10_000); pg.Cursor != 6 || len(pg.Records) != 6 {
		t.Fatalf("out-of-range cursor did not reset: %+v", pg)
	}

	// An exhausted cursor yields an empty page, same generation.
	if pg := l.page(l.gen, 6); len(pg.Records) != 0 || pg.More || pg.Cursor != 6 {
		t.Fatalf("exhausted pull: %+v", pg)
	}
}

func TestSyncLogPaginatesLargeLogs(t *testing.T) {
	l := newSyncLog(nil, false)
	n := pullPageSize + 3
	for i := 0; i < n; i++ {
		l.Store(rec(i).Key, rec(i).Metrics)
	}
	pg := l.page("", 0)
	if len(pg.Records) != pullPageSize || !pg.More || pg.Cursor != pullPageSize {
		t.Fatalf("first page: %d records, more=%v, cursor=%d", len(pg.Records), pg.More, pg.Cursor)
	}
	pg = l.page(pg.Gen, pg.Cursor)
	if len(pg.Records) != 3 || pg.More || pg.Cursor != n {
		t.Fatalf("last page: %d records, more=%v, cursor=%d", len(pg.Records), pg.More, pg.Cursor)
	}
}

// TestStoreSyncBetweenDaemons is the end-to-end store sync: daemon A
// measures, daemon B pulls A's records and then answers the same
// request entirely from its memo — zero fresh measurements.
func TestStoreSyncBetweenDaemons(t *testing.T) {
	_, clientA := newTestServer(t, Config{Workers: 2})
	srvB, clientB := newTestServer(t, Config{Workers: 2})

	req := cli.Request{Scenario: "redis-get90"}
	respA, err := clientA.Explore(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	srvB.StartPull(clientA.BaseURL, 10*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for srvB.Stats().RecordsIngested == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("B never ingested from A: %+v", srvB.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	respB, err := clientB.Explore(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if respB.Report != respA.Report {
		t.Fatalf("synced daemon answers different bytes\n--- B ---\n%s--- A ---\n%s", respB.Report, respA.Report)
	}
	if respB.Stats == nil || respB.Stats.Evaluated != 0 {
		t.Fatalf("B still measured after syncing A's store: %+v", respB.Stats)
	}
}

// TestPullEndpointOverHTTP exercises GET /v1/store/pull the way a
// peer's puller does, including generation reset.
func TestPullEndpointOverHTTP(t *testing.T) {
	srv, client := newTestServer(t, Config{Workers: 2})
	if _, err := client.Explore(context.Background(), cli.Request{Scenario: "redis-get90"}); err != nil {
		t.Fatal(err)
	}
	want := srv.sync.len()
	if want == 0 {
		t.Fatal("sync log empty after a run")
	}

	pg, err := client.Pull(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Records) != want || pg.Cursor != want || pg.More {
		t.Fatalf("pull: %d records, cursor=%d, more=%v; want %d", len(pg.Records), pg.Cursor, pg.More, want)
	}
	// Resume at the cursor: nothing new.
	pg2, err := client.Pull(context.Background(), pg.Gen, pg.Cursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg2.Records) != 0 || pg2.Gen != pg.Gen {
		t.Fatalf("resumed pull: %+v", pg2)
	}
	// A stale generation restarts from the head.
	pg3, err := client.Pull(context.Background(), "gen-of-previous-life", pg.Cursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg3.Records) != want {
		t.Fatalf("stale-gen pull: %d records, want %d", len(pg3.Records), want)
	}
}
