package serve

import (
	"context"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexos/internal/cli"
)

// Concurrency harness: coalescing semantics (one engine pass for a
// storm of identical requests), orphaned-flight cancellation, and
// goroutine hygiene across server shutdown.

// stableGoroutines polls until the goroutine count settles back to at
// most base (the PR 3 cancellation-test pattern), failing if it never
// does.
func stableGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d alive, started with %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitStats polls the server statistics until cond holds.
func waitStats(t *testing.T, srv *Server, what string, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cond(srv.Stats()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats: %+v", what, srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeCoalescesIdenticalRequestStorm is the single-flight
// acceptance test: N concurrent identical requests — at N different
// worker counts, which must not matter — trigger exactly one engine
// pass, observed three ways (the flight counter, the per-decision
// hook against the oracle's decision count, and the coalesce
// counter), and every caller receives byte-identical bytes.
func TestServeCoalescesIdenticalRequestStorm(t *testing.T) {
	req := cli.Request{Scenario: "redis-get90"}
	want := oracle(t, req, nil)

	srv, client := newTestServer(t, Config{Workers: 2})
	gate := make(chan struct{})
	srv.onFlightStart = func(string) { <-gate }
	var decided atomic.Int64
	srv.onDecided = func(string) { decided.Add(1) }

	const n = 8
	reports := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := req
			r.Workers = 1 + i // 1..8: the key must not see worker count
			resp, err := client.Explore(context.Background(), r)
			reports[i], errs[i] = resp.Report, err
		}(i)
	}

	// The flight is gated, so every request must pile onto it before
	// any measurement happens.
	waitStats(t, srv, "the storm to attach", func(st Stats) bool {
		return st.Requests == n && st.Coalesced == n-1
	})
	close(gate)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if reports[i] != want.report {
			t.Errorf("request %d: report differs from oracle", i)
		}
	}
	st := srv.Stats()
	if st.FlightsStarted != 1 {
		t.Errorf("storm started %d engine passes, want exactly 1", st.FlightsStarted)
	}
	if got, wantN := decided.Load(), int64(len(want.lines)); got != wantN {
		t.Errorf("engine decided %d measurements, want the oracle's single-pass %d", got, wantN)
	}
	if st.Completed != 1 {
		t.Errorf("completed flights: %d, want 1", st.Completed)
	}
}

// TestServeStreamAttachMidFlight proves a subscriber that joins an
// in-flight run still sees the complete, ordered line sequence: the
// flight's decided prefix replays, then the live tail follows.
func TestServeStreamAttachMidFlight(t *testing.T) {
	req := cli.Request{Scenario: "redis-get50"}
	want := oracle(t, req, nil)
	if len(want.lines) < 4 {
		t.Fatalf("oracle produced only %d lines; test needs a few", len(want.lines))
	}

	srv, client := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	var decided atomic.Int64
	srv.onDecided = func(string) {
		// Hold the engine after a few decisions until the late
		// subscriber has attached.
		if decided.Add(1) == 3 {
			<-release
		}
	}

	first := make(chan error, 1)
	go func() {
		_, err := client.Explore(context.Background(), req)
		first <- err
	}()
	waitStats(t, srv, "a partially-decided flight", func(st Stats) bool {
		return st.FlightsStarted == 1 && decided.Load() >= 3
	})

	var lines []string
	done := make(chan error, 1)
	go func() {
		_, err := client.ExploreStream(context.Background(), req, func(line string) { lines = append(lines, line) })
		done <- err
	}()
	waitStats(t, srv, "the late subscriber to coalesce", func(st Stats) bool { return st.Coalesced == 1 })
	close(release)

	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if strings.Join(lines, "\n") != strings.Join(want.lines, "\n") {
		t.Errorf("mid-flight subscriber saw %d lines, oracle %d; sequences differ", len(lines), len(want.lines))
	}
}

// TestServeDistinctStormNoGoroutineLeak floods the daemon with
// distinct requests — more than the flight budget, mixing complete
// and streamed — and asserts that after shutdown no goroutine
// survives.
func TestServeDistinctStormNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, client := newTestServer(t, Config{Workers: 2, MaxFlights: 2})

	reqs := []cli.Request{
		{Scenario: "redis-get90"},
		{Scenario: "redis-get90", Budgets: []string{"400000"}},
		{Scenario: "redis-get90", Budgets: []string{"300000"}, Stream: true},
		{Scenario: "redis-get100"},
		{Scenario: "nginx-static", Stream: true},
		{Scenario: "nginx-keep75"},
		{Scenario: "iperf-stream1", Budgets: []string{"throughput>=1"}},
		{Scenario: "redis-pipe8", Shard: "0/2"},
		{Scenario: "redis-pipe8", Shard: "1/2"},
		{App: "redis"},
		{App: "redis", Budgets: []string{"450000"}, Verbose: true},
		{App: "nginx", Stream: true},
	}
	var wg sync.WaitGroup
	errs := make([]error, len(reqs))
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r cli.Request) {
			defer wg.Done()
			var err error
			if r.Stream {
				_, err = client.ExploreStream(context.Background(), r, nil)
			} else {
				_, err = client.Explore(context.Background(), r)
			}
			errs[i] = err
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d (%+v): %v", i, reqs[i], err)
		}
	}
	st := srv.Stats()
	if st.FlightsStarted != int64(len(reqs)) {
		t.Errorf("distinct storm started %d flights, want %d (keys collided?)", st.FlightsStarted, len(reqs))
	}

	// Tear the server down ourselves (Cleanup would too, but the leak
	// assertion must run after it).
	client.HTTPClient.CloseIdleConnections()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	stableGoroutines(t, base+2) // httptest's listener goroutine dies with Cleanup
}

// TestServeSubscriberTimeoutCancelsOrphanedFlight threads the
// per-request timeout into the engine: when the only subscriber times
// out, the flight is canceled rather than left running, and a retry
// starts fresh and succeeds.
func TestServeSubscriberTimeoutCancelsOrphanedFlight(t *testing.T) {
	req := cli.Request{Scenario: "nginx-keepalive"}
	want := oracle(t, req, nil)

	srv, client := newTestServer(t, Config{Workers: 2})
	gate := make(chan struct{})
	srv.onFlightStart = func(string) { <-gate }

	timed := req
	timed.TimeoutMs = 300
	sub := make(chan error, 1)
	go func() {
		_, err := client.Explore(context.Background(), timed)
		sub <- err
	}()
	// The flight must be in flight (gated) before its only subscriber
	// times out, so the cancellation is unambiguously the timeout's.
	waitStats(t, srv, "the gated flight to start", func(st Stats) bool { return st.FlightsStarted == 1 })
	if err := <-sub; err == nil {
		t.Fatal("timed-out request reported success")
	}
	close(gate) // let the orphaned flight run into its canceled context
	waitStats(t, srv, "the orphaned flight to cancel", func(st Stats) bool { return st.Canceled == 1 })

	resp, err := client.Explore(context.Background(), req)
	if err != nil {
		t.Fatalf("retry after timeout: %v", err)
	}
	if resp.Report != want.report {
		t.Error("retry report differs from oracle")
	}
	if st := srv.Stats(); st.FlightsStarted != 2 {
		t.Errorf("flights started: %d, want 2 (timeout + retry)", st.FlightsStarted)
	}
}

// TestServeShutdownUnblocksSubscribers closes the server while a
// flight is in progress: the waiting subscriber gets a clean error,
// new requests are rejected, and Close returns.
func TestServeShutdownUnblocksSubscribers(t *testing.T) {
	srv, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := &cli.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
	gate := make(chan struct{})
	srv.onFlightStart = func(string) { <-gate }

	sub := make(chan error, 1)
	go func() {
		_, err := client.Explore(context.Background(), cli.Request{Scenario: "redis-get90"})
		sub <- err
	}()
	waitStats(t, srv, "the flight to start", func(st Stats) bool { return st.FlightsStarted == 1 })

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	waitStats(t, srv, "the server to refuse new work", func(Stats) bool {
		_, err := client.Explore(context.Background(), cli.Request{Scenario: "redis-get100"})
		return err != nil
	})
	close(gate)

	if err := <-sub; err == nil {
		t.Error("subscriber of a shutdown-canceled flight reported success")
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServeAttackStormCoalescesByAxisKey extends the coalescing storm
// to the attack axes: a storm of attack-scored requests differing only
// in presentation and scheduling knobs — worker count, verbosity, the
// default machine profile under its aliases — still triggers exactly
// one engine pass, while requests differing in attack scenario,
// machine profile or pinned ASLR level each get their own flight and
// their own bytes.
func TestServeAttackStormCoalescesByAxisKey(t *testing.T) {
	req := cli.Request{Scenario: "redis-get90", Attack: "rop-chain", Ops: 40}
	want := oracle(t, req, nil)

	srv, client := newTestServer(t, Config{Workers: 2})
	gate := make(chan struct{})
	srv.onFlightStart = func(string) { <-gate }

	storm := []cli.Request{
		req,
		{Scenario: "redis-get90", Attack: " ROP-Chain ", Ops: 40},
		{Scenario: "redis-get90", Attack: "rop-chain", Ops: 40, Profile: "x86"},
		{Scenario: "redis-get90", Attack: "rop-chain", Ops: 40, Profile: "xeon"},
		{Scenario: "redis-get90", Attack: "rop-chain", Ops: 40, Verbose: true},
		{Scenario: "redis-get90", Attack: "rop-chain", Ops: 40, Workers: 7},
	}
	reports := make([]string, len(storm))
	errs := make([]error, len(storm))
	var wg sync.WaitGroup
	for i, r := range storm {
		wg.Add(1)
		go func(i int, r cli.Request) {
			defer wg.Done()
			r.Workers = 1 + i%4 // the key must not see worker count
			resp, err := client.Explore(context.Background(), r)
			reports[i], errs[i] = resp.Report, err
		}(i, r)
	}
	waitStats(t, srv, "the attack storm to attach", func(st Stats) bool {
		return st.Requests == int64(len(storm)) && st.Coalesced == int64(len(storm))-1
	})
	close(gate)
	wg.Wait()
	for i := range storm {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
	}
	// The verbose variant renders more bytes from the same flight; the
	// rest must be byte-identical to the local oracle.
	for _, i := range []int{0, 1, 2, 3, 5} {
		if reports[i] != want.report {
			t.Errorf("request %d: report differs from oracle", i)
		}
	}
	if st := srv.Stats(); st.FlightsStarted != 1 {
		t.Errorf("attack storm started %d engine passes, want exactly 1", st.FlightsStarted)
	}

	// Requests that move an attack axis are different spaces or
	// scorings: each must start a fresh flight and disagree with the
	// rop-chain report.
	srv.onFlightStart = nil
	distinct := []cli.Request{
		{Scenario: "redis-get90", Ops: 40},                                        // the plain performance run
		{Scenario: "redis-get90", Attack: "comp-leak", Ops: 40},                   // a different attacker
		{Scenario: "redis-get90", Attack: "rop-chain", Ops: 40, Profile: "riscv"}, // a different machine
		{Scenario: "redis-get90", Attack: "rop-chain", Ops: 40, ASLR: "16+leak"},  // pinned vs swept ASLR
	}
	flights := srv.Stats().FlightsStarted
	for i, r := range distinct {
		resp, err := client.Explore(context.Background(), r)
		if err != nil {
			t.Fatalf("distinct request %d: %v", i, err)
		}
		if resp.Report == want.report {
			t.Errorf("distinct request %d returned the rop-chain storm's bytes; axes must not coalesce", i)
		}
	}
	if st := srv.Stats(); st.FlightsStarted != flights+int64(len(distinct)) {
		t.Errorf("distinct attack axes started %d flights, want %d",
			st.FlightsStarted-flights, len(distinct))
	}
}
