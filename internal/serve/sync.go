package serve

import (
	"strconv"
	"sync"
	"time"

	"flexos"
	"flexos/internal/cli"
	"flexos/internal/store"
)

// pullPageSize bounds one /v1/store/pull page; pullMaxPagesPerRound
// bounds how far one puller tick chases a hot log before yielding.
const (
	pullPageSize         = 2048
	pullMaxPagesPerRound = 64
)

// syncLog is the Backing the server threads between its memo and the
// (optional) persistent store: every record the daemon learns — a
// fresh measurement writing through, a store record discovered at
// open, a record ingested from a peer — is appended to an ordered key
// log, which is what lets peers ask "everything after cursor N"
// (GET /v1/store/pull) instead of re-shipping the whole store. The
// log order is node-local and meaningless; only the (key, metrics)
// records travel, and store.Merge semantics apply on arrival: a known
// key with identical metrics is a no-op, a disagreeing one is counted
// and dropped (first value wins — this node's history is what its
// open flights already served from).
//
// Records that cannot land in the store (no store configured, or the
// store is read-only) are kept in an in-memory overlay, so a
// read-only daemon still warm-starts from its peers.
type syncLog struct {
	st       *store.Store // nil: memory only
	readonly bool
	gen      string // log incarnation; restarts rebuild in a new order

	mu    sync.RWMutex
	known map[string]struct{}       // every key in the log
	log   []string                  // keys, arrival order
	extra map[string]flexos.Metrics // records the store cannot hold
}

// newSyncLog builds the log, seeding it from the store's existing
// records (sorted-key order — deterministic, though peers never rely
// on it: the generation token invalidates their cursors anyway).
func newSyncLog(st *store.Store, readonly bool) *syncLog {
	l := &syncLog{
		st:       st,
		readonly: readonly,
		gen:      strconv.FormatInt(time.Now().UnixNano(), 36),
		known:    make(map[string]struct{}),
		extra:    make(map[string]flexos.Metrics),
	}
	if st != nil {
		for _, key := range st.Keys() {
			l.known[key] = struct{}{}
			l.log = append(l.log, key)
		}
	}
	return l
}

// Load implements explore.Backing.
func (l *syncLog) Load(key string) (flexos.Metrics, bool) {
	if l.st != nil {
		if m, ok := l.st.Load(key); ok {
			return m, true
		}
	}
	l.mu.RLock()
	m, ok := l.extra[key]
	l.mu.RUnlock()
	return m, ok
}

// Store implements explore.Backing: the engine's write-through after
// a fresh measurement. First value wins, like the store itself.
func (l *syncLog) Store(key string, m flexos.Metrics) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.put(key, m)
}

// put records one (key, metrics) pair; caller holds l.mu. Reports
// whether the key was new.
func (l *syncLog) put(key string, m flexos.Metrics) bool {
	if _, dup := l.known[key]; dup {
		return false
	}
	l.known[key] = struct{}{}
	l.log = append(l.log, key)
	if l.st != nil && !l.readonly {
		l.st.Store(key, m)
	} else {
		l.extra[key] = m
	}
	return true
}

// len returns the log length (the pull cursor's upper bound).
func (l *syncLog) len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.log)
}

// ingest replays peer records into the log (and through it, the memo
// tier and store): new keys are appended, identical duplicates are
// no-ops, disagreeing duplicates are dropped and counted — the local
// value wins, because this node's flights already served it.
func (l *syncLog) ingest(recs []cli.Record) (added, conflicts int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, rec := range recs {
		if _, dup := l.known[rec.Key]; !dup {
			l.put(rec.Key, rec.Metrics)
			added++
			continue
		}
		if cur, ok := l.loadLocked(rec.Key); ok && cur != rec.Metrics {
			conflicts++
		}
	}
	return added, conflicts
}

func (l *syncLog) loadLocked(key string) (flexos.Metrics, bool) {
	if l.st != nil {
		if m, ok := l.st.Load(key); ok {
			return m, true
		}
	}
	m, ok := l.extra[key]
	return m, ok
}

// page renders one pull page: the records after cursor `since` under
// generation gen. A stale or empty generation (a restarted server, a
// first pull) resets the cursor to the log head — the puller re-ships
// everything, and ingest dedups it.
func (l *syncLog) page(gen string, since int) cli.PullPage {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if gen != l.gen || since < 0 || since > len(l.log) {
		since = 0
	}
	end := min(since+pullPageSize, len(l.log))
	recs := make([]cli.Record, 0, end-since)
	for _, key := range l.log[since:end] {
		if m, ok := l.loadLocked(key); ok {
			recs = append(recs, cli.Record{Key: key, Metrics: m})
		}
	}
	return cli.PullPage{Gen: l.gen, Cursor: end, More: end < len(l.log), Records: recs}
}

// StartPull launches the store-sync puller against a peer daemon:
// every interval it drains the peer's sync log (paged, bounded per
// round) and ingests the records, so this node warm-starts from any
// other node's measurements. It stops when the server closes.
func (s *Server) StartPull(peer string, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	client := &cli.Client{BaseURL: peer, Retry: cli.DefaultRetry}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		gen, cursor := "", 0
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.baseCtx.Done():
				return
			case <-t.C:
			}
			for page := 0; page < pullMaxPagesPerRound; page++ {
				pg, err := client.Pull(s.baseCtx, gen, cursor)
				if err != nil {
					if s.baseCtx.Err() == nil {
						s.mu.Lock()
						s.stats.PullErrors++
						s.mu.Unlock()
					}
					break
				}
				gen, cursor = pg.Gen, pg.Cursor
				added, conflicts := s.sync.ingest(pg.Records)
				s.mu.Lock()
				s.stats.PullPages++
				s.stats.RecordsIngested += int64(added)
				s.stats.IngestConflicts += int64(conflicts)
				s.mu.Unlock()
				if !pg.More {
					break
				}
			}
		}
	}()
}
