package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"flexos"
	"flexos/internal/cli"
	"flexos/internal/cluster"
)

// End-to-end service harness: every test drives the real handler over
// real HTTP (httptest) through the real client, and the acceptance
// bar is oracle equivalence — a served response, complete or
// streamed, must be byte-identical to what the direct Query path
// produces for the same request. Like a protection layer validated
// against an explicit attacker model, the serving layer is only
// trusted as far as this harness proves it.

// newTestServer boots a Server behind httptest and returns the client
// pointed at it. Cleanup closes both.
func newTestServer(t *testing.T, cfg Config) (*Server, *cli.Client) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, &cli.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
}

// oracle runs the request directly through the Query path — the
// ground truth the daemon must reproduce byte for byte. The shared
// memo only speeds repeats up; results are byte-identical with or
// without it.
type oracleOut struct {
	report string
	lines  []string
	stats  cli.RunStats
}

func oracle(t *testing.T, req cli.Request, memo *flexos.ExploreMemo) oracleOut {
	t.Helper()
	q, info, err := req.Build()
	if err != nil {
		t.Fatalf("oracle build %+v: %v", req, err)
	}
	if memo != nil {
		q.Memo(memo)
	}
	var lines []string
	seq, final := q.Stream(context.Background())
	for cfg, m := range seq {
		lines = append(lines, cli.StreamLine(info.ScenarioMode, cfg, m))
	}
	res, err := final()
	noFeasible := errors.Is(err, flexos.ErrNoFeasible)
	if err != nil && !noFeasible {
		t.Fatalf("oracle run %+v: %v", req, err)
	}
	return oracleOut{
		report: cli.RenderReport(info.Title, res, info.Constraints, info.ScenarioMode, req.Pareto, req.Verbose, noFeasible),
		lines:  lines,
		stats:  cli.StatsOf(res),
	}
}

// quadScenarioNames lists every library scenario the Fig6 request
// path can serve.
func quadScenarioNames(t *testing.T) []string {
	t.Helper()
	var names []string
	for _, sc := range flexos.Scenarios() {
		if _, ok := sc.Quad(); ok {
			names = append(names, sc.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("scenario library has no four-component scenarios")
	}
	return names
}

// TestServeOracleEquivalenceAllScenarios is the acceptance criterion:
// for every library scenario, at 1, 4 and 8 workers, the served
// response — complete and streamed — is byte-identical to the direct
// Query oracle.
func TestServeOracleEquivalenceAllScenarios(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 4})
	ctx := context.Background()
	memo := flexos.NewExploreMemo()
	for _, name := range quadScenarioNames(t) {
		for _, workers := range []int{1, 4, 8} {
			req := cli.Request{Scenario: name, Workers: workers}
			want := oracle(t, req, memo)

			resp, err := client.Explore(ctx, req)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if resp.Report != want.report {
				t.Errorf("%s workers=%d: served report differs from oracle:\n--- served\n%s--- oracle\n%s",
					name, workers, resp.Report, want.report)
			}

			var gotLines []string
			sresp, err := client.ExploreStream(ctx, req, func(line string) { gotLines = append(gotLines, line) })
			if err != nil {
				t.Fatalf("%s workers=%d stream: %v", name, workers, err)
			}
			if !reflect.DeepEqual(gotLines, want.lines) {
				t.Errorf("%s workers=%d: streamed lines differ from oracle (%d vs %d lines)",
					name, workers, len(gotLines), len(want.lines))
			}
			if sresp.Report != want.report {
				t.Errorf("%s workers=%d: streamed final report differs from oracle", name, workers)
			}
		}
	}
}

// TestServeOracleEquivalenceRequestMatrix covers the request surface
// beyond plain scenario runs: scalar app spaces, verbose listings,
// Pareto frontiers, multi-constraint conjunctions, shards, ranking
// metrics, and an infeasible budget (whose "no configuration" report
// is still a report, not an error).
func TestServeOracleEquivalenceRequestMatrix(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 4})
	ctx := context.Background()
	reqs := []cli.Request{
		{App: "redis"},
		{App: "redis", Budgets: []string{"400000"}, Verbose: true},
		{App: "nginx", Requests: 120},
		{App: "cross", Shard: "1/3"},
		{App: "cross", Shard: "0/1"},
		{Scenario: "redis-get90", Pareto: true, Exhaustive: true},
		{Scenario: "redis-pipe8", Budgets: []string{"throughput>=200000", "p99<=40", "mem<=400000"}},
		{Scenario: "nginx-keep75", Metric: "p99", Budgets: []string{"3"}},
		{Scenario: "nginx-static", Ops: 120},
		{Scenario: "redis-get50", Budgets: []string{"throughput>=999999999"}}, // infeasible
	}
	for _, req := range reqs {
		want := oracle(t, req, nil)
		resp, err := client.Explore(ctx, req)
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if resp.Report != want.report {
			t.Errorf("%+v: served report differs from oracle:\n--- served\n%s--- oracle\n%s", req, resp.Report, want.report)
		}
		if resp.Stats == nil {
			t.Errorf("%+v: response carries no stats", req)
		} else if resp.Stats.Shard != want.stats.Shard {
			t.Errorf("%+v: served shard %q, oracle %q", req, resp.Stats.Shard, want.stats.Shard)
		}
	}
}

// TestServeColdEqualsWarm pins the two-tier-memo guarantee at the
// service boundary: the same request served cold, then entirely from
// the shared memo, returns byte-identical reports — only statistics
// move.
func TestServeColdEqualsWarm(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 4, CacheDir: t.TempDir()})
	ctx := context.Background()
	req := cli.Request{Scenario: "redis-get100", Budgets: []string{"300000"}}
	first, err := client.Explore(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.Explore(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Report != second.Report {
		t.Error("warm report differs from cold")
	}
	if second.Stats.Evaluated != 0 || second.Stats.MemoHits == 0 {
		t.Errorf("warm rerun statistics: %+v, want everything memo-served", second.Stats)
	}
}

// TestServeRestartWarmStartsFromStore proves the persistent tier: a
// fresh daemon on the same cache directory serves the repeat without
// re-measuring anything.
func TestServeRestartWarmStartsFromStore(t *testing.T) {
	dir := t.TempDir()
	req := cli.Request{Scenario: "iperf-stream4", Budgets: []string{"throughput>=1"}}

	srv1, err := New(Config{Workers: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	first, err := (&cli.Client{BaseURL: ts1.URL, HTTPClient: ts1.Client()}).Explore(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	_, client := newTestServer(t, Config{Workers: 4, CacheDir: dir})
	second, err := client.Explore(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Report != second.Report {
		t.Error("restarted daemon's report differs")
	}
	if second.Stats.Evaluated != 0 {
		t.Errorf("restarted daemon re-measured %d configurations; want store-served", second.Stats.Evaluated)
	}
}

// TestServeRejectsBadRequests covers the HTTP error surface: every
// malformed request is a clean 4xx/405 with a JSON error, never a
// hung or half-served response.
func TestServeRejectsBadRequests(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	ts := httptest.NewServer(srv) // raw requests outside the typed client
	defer ts.Close()

	post := func(body string) *http.Response {
		t.Helper()
		res, err := ts.Client().Post(ts.URL+cli.ExplorePath, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { res.Body.Close() })
		return res
	}
	for _, tc := range []struct {
		name, body string
	}{
		{"empty body", ""},
		{"not json", "hello"},
		{"unknown field", `{"bogus": 1}`},
		{"trailing garbage", `{"app":"redis"} {"app":"redis"}`},
		{"unknown app", `{"app":"plan9"}`},
		{"unknown scenario", `{"scenario":"nope"}`},
		{"bad metric", `{"metric":"zzz"}`},
		{"bad budget", `{"budgets":["p99<="]}`},
		{"bad shard", `{"shard":"9/4"}`},
		{"pareto without scenario", `{"app":"redis","pareto":true}`},
		{"requests over cap", `{"app":"redis","requests":2000000}`},
	} {
		if res := post(tc.body); res.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", tc.name, res.StatusCode)
		}
	}

	if res, err := ts.Client().Get(ts.URL + cli.ExplorePath); err != nil {
		t.Fatal(err)
	} else if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET explore: HTTP %d, want 405", res.StatusCode)
	} else {
		res.Body.Close()
	}

	// A scenario without a four-component space cannot build a query.
	for _, sc := range flexos.Scenarios() {
		if _, ok := sc.Quad(); !ok {
			if _, err := client.Explore(context.Background(), cli.Request{Scenario: sc.Name()}); err == nil {
				t.Errorf("bench-only scenario %s was accepted", sc.Name())
			}
			break
		}
	}
}

// TestServeHealthzStatsz exercises the observability endpoints.
func TestServeHealthzStatsz(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	if err := client.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Explore(context.Background(), cli.Request{Scenario: "redis-get90"}); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Requests != 1 || st.FlightsStarted != 1 || st.Completed != 1 {
		t.Errorf("stats after one request: %+v", st)
	}
	if st.Evaluated == 0 || st.MemoEntries == 0 {
		t.Errorf("stats did not accumulate run statistics: %+v", st)
	}
	if st.UptimeMs <= 0 {
		t.Errorf("uptime gauge did not advance: %+v", st)
	}
	if st.InFlight != 0 || st.Subscribers != 0 {
		t.Errorf("gauges nonzero after the flight completed: %+v", st)
	}
	if st.SyncLogLen == 0 {
		t.Errorf("sync log empty after a completed run: %+v", st)
	}
	if st.RequestLatency.Count != 1 || st.RequestLatency.Window != 1 {
		t.Errorf("request latency did not count the explore: %+v", st.RequestLatency)
	}
	if st.RequestLatency.P50Ms <= 0 ||
		st.RequestLatency.P50Ms > st.RequestLatency.P95Ms ||
		st.RequestLatency.P95Ms > st.RequestLatency.P99Ms ||
		st.RequestLatency.P99Ms > st.RequestLatency.MaxMs {
		t.Errorf("request latency percentiles not ordered: %+v", st.RequestLatency)
	}

	res, err := client.HTTPClient.Get(client.BaseURL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var wire Stats
	if err := json.NewDecoder(res.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Requests != 1 || wire.FlightsStarted != 1 {
		t.Errorf("/statsz: %+v", wire)
	}
	if wire.UptimeMs <= 0 || wire.InFlight != 0 || wire.SyncLogLen == 0 {
		t.Errorf("/statsz gauges: %+v", wire)
	}
	if wire.RequestLatency.Count != 1 || wire.RequestLatency.P50Ms <= 0 {
		t.Errorf("/statsz request latency: %+v", wire.RequestLatency)
	}
}

// TestStatszClusterSection: a coordinator's /statsz carries the fleet
// view — one row per worker with dispatch / re-dispatch / failure
// counters — and the exact JSON field names clients scrape.
func TestStatszClusterSection(t *testing.T) {
	co := cluster.New(cluster.Config{HealthInterval: time.Hour})
	co.Join("http://worker-a:1")
	co.Join("http://worker-b:1")
	_, client := newTestServer(t, Config{Cluster: co, SelfURL: "http://coordinator:1"})

	res, err := client.HTTPClient.Get(client.BaseURL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var wire map[string]any
	if err := json.NewDecoder(res.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"uptime_ms", "in_flight", "sync_log_len", "cluster", "request_latency"} {
		if _, ok := wire[key]; !ok {
			t.Fatalf("/statsz missing %q: %v", key, wire)
		}
	}
	lat, ok := wire["request_latency"].(map[string]any)
	if !ok {
		t.Fatalf("request_latency section is not an object: %v", wire["request_latency"])
	}
	for _, key := range []string{"count", "window", "p50_ms", "p95_ms", "p99_ms", "max_ms"} {
		if _, present := lat[key]; !present {
			t.Fatalf("request_latency missing %q: %v", key, lat)
		}
	}
	cl, ok := wire["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("cluster section is not an object: %v", wire["cluster"])
	}
	workers, ok := cl["workers"].([]any)
	if !ok || len(workers) != 2 {
		t.Fatalf("cluster.workers: %v", cl["workers"])
	}
	row, ok := workers[0].(map[string]any)
	if !ok {
		t.Fatalf("worker row: %v", workers[0])
	}
	for _, key := range []string{"url", "alive", "dispatched", "redispatched", "failures"} {
		if _, present := row[key]; !present {
			t.Fatalf("worker row missing %q: %v", key, row)
		}
	}
}
