package figures

import (
	"os"
	"strings"
	"testing"
)

// Small request counts keep the suite fast; the simulation is
// deterministic so small counts are exact, not noisy.
const (
	reqs    = 150
	queries = 60
	packets = 30
)

func TestFig6RedisShape(t *testing.T) {
	rows, err := Fig6Redis(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 80 {
		t.Fatalf("Fig6 rows = %d, want 80", len(rows))
	}
	// Sorted ascending.
	for i := 1; i < len(rows); i++ {
		if rows[i].Perf < rows[i-1].Perf {
			t.Fatal("rows not sorted")
		}
	}
	// The fastest configuration disables isolation and hardening.
	top := rows[len(rows)-1]
	if top.Compartments != 1 || top.Hardened != 0 {
		t.Fatalf("fastest config = %+v, want 1 comp / 0 hardened", top)
	}
	// The slowest has many compartments / much hardening.
	bottom := rows[0]
	if bottom.Compartments < 2 || bottom.Hardened < 3 {
		t.Fatalf("slowest config = %+v", bottom)
	}
	// Wide spread ("one order of magnitude" in the paper's narrative is
	// ~4.1x between extremes; require at least 2.5x here).
	if top.Perf/bottom.Perf < 2.5 {
		t.Fatalf("spread = %.2fx, want >= 2.5x", top.Perf/bottom.Perf)
	}
	text := FormatFig6("redis", rows)
	if !strings.Contains(text, "spread") {
		t.Fatal("format missing spread line")
	}
}

func TestFig6NginxFlatterHead(t *testing.T) {
	redisRows, err := Fig6Redis(reqs)
	if err != nil {
		t.Fatal(err)
	}
	nginxRows, err := Fig6Nginx(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// §6.1: more Nginx configs sit under 20% overhead than Redis
	// configs.
	under := func(rows []ConfigPerf, frac float64) int {
		max := rows[len(rows)-1].Perf
		n := 0
		for _, r := range rows {
			if r.Perf >= (1-frac)*max {
				n++
			}
		}
		return n
	}
	rU, nU := under(redisRows, 0.20), under(nginxRows, 0.20)
	if nU <= rU {
		t.Fatalf("low-overhead configs: nginx %d <= redis %d; distribution shape wrong", nU, rU)
	}
}

func TestFig7PairsAllConfigs(t *testing.T) {
	redisRows, _ := Fig6Redis(100)
	nginxRows, _ := Fig6Nginx(100)
	pts := Fig7(redisRows, nginxRows)
	if len(pts) != 80 {
		t.Fatalf("scatter points = %d, want 80", len(pts))
	}
	for _, p := range pts {
		if p.RedisNorm <= 0 || p.RedisNorm > 1 || p.NginxNorm <= 0 || p.NginxNorm > 1 {
			t.Fatalf("bad normalization: %+v", p)
		}
	}
	if !strings.Contains(FormatFig7(pts), "nginx-norm") {
		t.Fatal("format wrong")
	}
}

func TestFig8FindsAFewStars(t *testing.T) {
	// Paper: the 500k req/s budget prunes 80 configurations to 5.
	res, err := Fig8(reqs, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stars) < 2 || len(res.Stars) > 12 {
		t.Fatalf("stars = %d, want a handful (~5)", len(res.Stars))
	}
	// Pruning must have saved measurements.
	if res.Evaluated >= res.Total {
		t.Fatalf("no pruning: %d/%d", res.Evaluated, res.Total)
	}
	for _, s := range res.Stars {
		if s.Perf < 500_000 {
			t.Fatalf("star below budget: %+v", s)
		}
	}
	if !strings.Contains(FormatFig8(res), "stars") {
		t.Fatal("format wrong")
	}
}

func TestFig5LatticeAndBudget(t *testing.T) {
	nodes, err := Fig5(100, 600_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 16 {
		t.Fatalf("Fig5 nodes = %d, want 16", len(nodes))
	}
	stars := 0
	for _, n := range nodes {
		if n.Star {
			stars++
			if n.Pruned {
				t.Fatal("a node cannot be both star and pruned")
			}
		}
	}
	if stars == 0 {
		t.Fatal("no maximal elements under budget")
	}
	_ = FormatFig5(nodes, 600_000)
}

func TestFig9Shape(t *testing.T) {
	rows, err := Fig9(packets)
	if err != nil {
		t.Fatal(err)
	}
	get := func(sys string, size int) float64 {
		for _, r := range rows {
			if r.System == sys && r.BufSize == size {
				return r.Gbps
			}
		}
		t.Fatalf("missing %s@%d", sys, size)
		return 0
	}
	// Ordering at 16B.
	if !(get("FlexOS NONE", 16) > get("FlexOS MPK2-light", 16) &&
		get("FlexOS MPK2-light", 16) > get("FlexOS MPK2-dss", 16) &&
		get("FlexOS MPK2-dss", 16) > get("FlexOS EPT2", 16)) {
		t.Fatal("Fig9 ordering at 16B broken")
	}
	// Unikraft == FlexOS NONE (P4).
	if get("Unikraft", 1024) != get("FlexOS NONE", 1024) {
		t.Fatal("Unikraft and FlexOS NONE must coincide")
	}
	// Convergence at 16KiB.
	if get("FlexOS EPT2", 16384) < 0.9*get("FlexOS NONE", 16384) {
		t.Fatal("EPT must converge at large buffers")
	}
	_ = FormatFig9(rows)
}

func TestFig10ShapeMatchesPaper(t *testing.T) {
	rows, err := Fig10(queries)
	if err != nil {
		t.Fatal(err)
	}
	get := func(sys, iso string) float64 {
		for _, r := range rows {
			if r.System == sys && r.Isolation == iso {
				return r.Seconds
			}
		}
		t.Fatalf("missing %s/%s", sys, iso)
		return 0
	}
	none := get("FlexOS", "NONE")
	mpk3 := get("FlexOS", "MPK3")
	ept2 := get("FlexOS", "EPT2")
	linux := get("Linux", "PT2")
	sel4 := get("SeL4/Genode", "PT3")
	cubN := get("CubicleOS", "NONE")
	cubM := get("CubicleOS", "MPK3")
	linuxu := get("Unikraft/linuxu", "NONE")

	// Unikraft == FlexOS NONE.
	if get("Unikraft", "NONE") != none {
		t.Fatal("Unikraft and FlexOS NONE must coincide")
	}
	// Paper's ordering: NONE < MPK3 < EPT2 ~ Linux < SeL4 < CubicleOS
	// NONE < linuxu < CubicleOS MPK3.
	if !(none < mpk3 && mpk3 < ept2 && ept2 < sel4 && sel4 < cubN && cubN < linuxu && linuxu < cubM) {
		t.Fatalf("Fig10 ordering broken: none=%.3f mpk3=%.3f ept2=%.3f linux=%.3f sel4=%.3f cubN=%.3f linuxu=%.3f cubM=%.3f",
			none, mpk3, ept2, linux, sel4, cubN, linuxu, cubM)
	}
	// "FlexOS with EPT2 performs almost identically to Linux."
	if ept2/linux < 0.7 || ept2/linux > 1.3 {
		t.Fatalf("EPT2 vs Linux = %.2f, want ~1.0", ept2/linux)
	}
	// "Compared to SeL4, FlexOS is 3.1x faster with MPK3."
	if sel4/mpk3 < 2.0 || sel4/mpk3 > 4.5 {
		t.Fatalf("SeL4/MPK3 = %.2fx, want ~3.1x", sel4/mpk3)
	}
	// "Compared to CubicleOS, FlexOS is an order of magnitude faster."
	if cubM/mpk3 < 8 {
		t.Fatalf("CubicleOS MPK3 / FlexOS MPK3 = %.1fx, want >= 10x", cubM/mpk3)
	}
	_ = FormatFig10(rows)
}

func TestFig11aShape(t *testing.T) {
	rows, err := Fig11a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	get := func(strategy string, buffers int) uint64 {
		for _, r := range rows {
			if r.Strategy == strategy && r.Buffers == buffers {
				return r.Cycles
			}
		}
		t.Fatalf("missing %s/%d", strategy, buffers)
		return 0
	}
	// DSS matches shared-stack performance (constant, 2 cycles per
	// variable)...
	for n := 1; n <= 3; n++ {
		if get("dss", n) != get("shared-stack", n) {
			t.Fatal("DSS must match shared-stack cost")
		}
		if get("dss", n) != uint64(2*n) {
			t.Fatalf("dss(%d) = %d cycles, want %d", n, get("dss", n), 2*n)
		}
	}
	// ...while heap conversion is 1-2 orders of magnitude slower and
	// grows with the number of variables.
	if get("heap", 1) < 50 {
		t.Fatalf("heap(1) = %d, want >= 50 cycles", get("heap", 1))
	}
	if !(get("heap", 1) < get("heap", 2) && get("heap", 2) < get("heap", 3)) {
		t.Fatal("heap cost must grow with buffer count")
	}
	_ = FormatFig11a(rows)
}

func TestFig11bMatchesCalibration(t *testing.T) {
	rows, err := Fig11b()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{
		"function":       2,
		"MPK-light":      62,
		"MPK-dss":        108,
		"EPT":            462,
		"syscall-nokpti": 146,
		"syscall":        470,
	}
	for _, r := range rows {
		w, ok := want[r.Gate]
		if !ok {
			t.Fatalf("unexpected gate %q", r.Gate)
		}
		// Measured gate paths may include a few cycles of frame
		// bookkeeping; allow +/- 10.
		diff := int64(r.Cycles) - int64(w)
		if diff < -10 || diff > 10 {
			t.Errorf("%s = %d cycles, want ~%d (Fig. 11b)", r.Gate, r.Cycles, w)
		}
	}
	_ = FormatFig11b(rows)
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := map[string][3]int{
		"lwip":      {542, 275, 23},
		"uksched":   {48, 8, 5},
		"vfscore":   {148, 37, 12},
		"uktime":    {10, 9, 0},
		"libredis":  {279, 90, 16},
		"libnginx":  {470, 85, 36},
		"libsqlite": {199, 145, 24},
		"libiperf":  {15, 14, 4},
	}
	if len(rows) != len(want) {
		t.Fatalf("Table 1 rows = %d, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		w, ok := want[r.Lib]
		if !ok {
			t.Errorf("unexpected row %q", r.Lib)
			continue
		}
		if r.PatchAdd != w[0] || r.PatchDel != w[1] || r.SharedVars != w[2] {
			t.Errorf("%s = +%d/-%d/%d vars, want +%d/-%d/%d",
				r.Lib, r.PatchAdd, r.PatchDel, r.SharedVars, w[0], w[1], w[2])
		}
	}
	_ = FormatTable1(rows)
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	rows, err := Fig11b()
	if err != nil {
		t.Fatal(err)
	}
	h, out := Fig11bCSV(rows)
	if err := WriteCSV(dir, "11b", h, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/fig11b.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "gate,cycles") || !strings.Contains(string(data), "EPT,") {
		t.Fatalf("csv content:\n%s", data)
	}
	// All converters produce aligned headers/rows.
	aRows, err := Fig11a()
	if err != nil {
		t.Fatal(err)
	}
	ah, aOut := Fig11aCSV(aRows)
	if len(aOut) != len(aRows) || len(aOut[0]) != len(ah) {
		t.Fatal("Fig11aCSV shape mismatch")
	}
}
