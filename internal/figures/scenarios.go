package figures

import (
	"context"
	"fmt"
	"strings"

	"flexos/internal/core"
	"flexos/internal/explore"
	"flexos/internal/isolation"
	"flexos/internal/netstack"
	"flexos/internal/ramfs"
	"flexos/internal/scenario"
	"flexos/internal/vfs"
)

// ScenarioRow is one scenario of the multi-metric table: the same
// workload measured on an unisolated baseline image and on an image
// whose service component (lwip, or the filesystem pair for SQLite)
// sits in its own MPK+DSS compartment.
type ScenarioRow struct {
	Name     string
	App      string
	Baseline scenario.Metrics
	Isolated scenario.Metrics
}

// scenarioBaselineSpec links every component into one NONE compartment.
func scenarioBaselineSpec(comps []string) core.ImageSpec {
	return core.ImageSpec{
		Mechanism: "none",
		Comps: []core.CompSpec{{
			Name: "comp0",
			Libs: append(tcbLibs(), comps...),
		}},
	}
}

// scenarioIsolatedSpec isolates the scenario's service component —
// lwip for the network applications, the filesystem pair for SQLite —
// behind full MPK gates with DSS sharing (the paper's partition B
// shape and default backend). The application stays with libc, whose
// helpers touch its private data.
func scenarioIsolatedSpec(app string, comps []string) core.ImageSpec {
	isolated := map[string]bool{netstack.Name: true}
	if app == "sqlite" {
		isolated = map[string]bool{vfs.Name: true, ramfs.Name: true}
	}
	var comp0, comp1 []string
	for _, c := range comps {
		if isolated[c] {
			comp1 = append(comp1, c)
		} else {
			comp0 = append(comp0, c)
		}
	}
	return core.ImageSpec{
		Mechanism: "intel-mpk",
		GateMode:  isolation.GateFull,
		Sharing:   isolation.ShareDSS,
		Comps: []core.CompSpec{
			{Name: "comp0", Libs: append(tcbLibs(), comp0...)},
			{Name: "comp1", Libs: comp1},
		},
	}
}

// ScenarioTable measures every scenario of the library on its baseline
// and isolated images, returning the multi-metric comparison behind the
// EXPERIMENTS.md table. Rows are sorted by scenario name (the library's
// order).
func ScenarioTable() ([]ScenarioRow, error) {
	var rows []ScenarioRow
	for _, sc := range scenario.All() {
		comps := sc.Components()
		base, err := sc.Run(scenarioBaselineSpec(comps))
		if err != nil {
			return nil, fmt.Errorf("figures: scenario %s baseline: %w", sc.Name(), err)
		}
		iso, err := sc.Run(scenarioIsolatedSpec(sc.App(), comps))
		if err != nil {
			return nil, fmt.Errorf("figures: scenario %s isolated: %w", sc.Name(), err)
		}
		rows = append(rows, ScenarioRow{Name: sc.Name(), App: sc.App(), Baseline: base, Isolated: iso})
	}
	return rows, nil
}

// FormatScenarios renders the scenario table: absolute metrics for the
// baseline, and the isolated image's overheads on every axis.
func FormatScenarios(rows []ScenarioRow) string {
	var b strings.Builder
	b.WriteString("Multi-metric scenarios: baseline (single compartment) vs service isolated (MPK full+DSS)\n")
	fmt.Fprintf(&b, "%-16s %-12s %-10s %-10s %-10s | %-9s %-9s %-9s %-9s\n",
		"scenario", "base op/s", "p50 µs", "p99 µs", "mem KiB", "tput", "p99", "mem", "boot")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-12.1f %-10.3f %-10.3f %-10.1f | %-9s %-9s %-9s %-9s\n",
			r.Name,
			r.Baseline.Throughput,
			r.Baseline.P50us,
			r.Baseline.P99us,
			float64(r.Baseline.PeakMemBytes)/1024,
			overhead(r.Isolated.Throughput, r.Baseline.Throughput, true),
			overhead(r.Isolated.P99us, r.Baseline.P99us, false),
			overhead(float64(r.Isolated.PeakMemBytes), float64(r.Baseline.PeakMemBytes), false),
			overhead(float64(r.Isolated.BootCycles), float64(r.Baseline.BootCycles), false))
	}
	return b.String()
}

// overhead formats the isolated/baseline change as a signed percentage;
// for higher-is-better metrics a slowdown prints negative.
func overhead(iso, base float64, higherIsBetter bool) string {
	if base == 0 {
		return "n/a"
	}
	pct := (iso - base) / base * 100
	if higherIsBetter {
		pct = -pct // report throughput loss as a positive overhead
	}
	return fmt.Sprintf("%+.1f%%", pct)
}

// FormatPareto renders an exploration result's safety × throughput ×
// memory frontier, one line per configuration in index order, with the
// graded safety level each point sits at.
func FormatPareto(title string, res *explore.Result) string {
	var b strings.Builder
	front := res.ParetoFront()
	levels := res.SafetyLevels()
	fmt.Fprintf(&b, "Pareto frontier (%s): %d of %d configurations\n", title, len(front), res.Total)
	fmt.Fprintf(&b, "%-6s %-55s %-12s %-10s %-10s %-10s\n",
		"level", "config", "op/s", "p99 µs", "mem KiB", "boot cy")
	for _, i := range front {
		m := res.Measurements[i]
		fmt.Fprintf(&b, "%-6d %-55s %-12.1f %-10.3f %-10.1f %-10d\n",
			levels[i], m.Config.Label(), m.Metrics.Throughput, m.Metrics.P99us,
			float64(m.Metrics.PeakMemBytes)/1024, m.Metrics.BootCycles)
	}
	return b.String()
}

// ScenarioPareto explores a scenario's Figure-6 space exhaustively with
// the engine and returns the result for frontier extraction — the
// multi-metric counterpart of Fig8.
func ScenarioPareto(ctx context.Context, name string, workers int) (*explore.Result, error) {
	sc, ok := scenario.ByName(name)
	if !ok {
		return nil, fmt.Errorf("figures: unknown scenario %q", name)
	}
	quad, ok := sc.Quad()
	if !ok {
		return nil, fmt.Errorf("figures: scenario %q has no Fig6 space", name)
	}
	return explore.Engine{}.Run(ctx, explore.Request{
		Space: explore.Fig6Space(quad),
		Measure: func(c *explore.Config) (scenario.Metrics, error) {
			return sc.Run(c.Spec(tcbLibs()))
		},
		Metric:  scenario.MetricThroughput,
		Workers: workers,
	})
}

// ScenariosCSV flattens the scenario table for CSV export.
func ScenariosCSV(rows []ScenarioRow) ([]string, [][]string) {
	header := []string{"scenario", "app",
		"base_ops", "base_p50us", "base_p99us", "base_maxus", "base_mem", "base_boot",
		"iso_ops", "iso_p50us", "iso_p99us", "iso_maxus", "iso_mem", "iso_boot"}
	var out [][]string
	f := func(v float64) string { return fmt.Sprintf("%.3f", v) }
	for _, r := range rows {
		out = append(out, []string{
			r.Name, r.App,
			f(r.Baseline.Throughput), f(r.Baseline.P50us), f(r.Baseline.P99us), f(r.Baseline.MaxUs),
			fmt.Sprint(r.Baseline.PeakMemBytes), fmt.Sprint(r.Baseline.BootCycles),
			f(r.Isolated.Throughput), f(r.Isolated.P50us), f(r.Isolated.P99us), f(r.Isolated.MaxUs),
			fmt.Sprint(r.Isolated.PeakMemBytes), fmt.Sprint(r.Isolated.BootCycles),
		})
	}
	return header, out
}
