// Package figures regenerates every table and figure of the FlexOS
// paper's evaluation (§6) on the simulated substrate. Each Fig*/Table*
// function runs the corresponding experiment and returns printable rows;
// bench_test.go wraps them in testing.B benchmarks and cmd/flexos-bench
// prints them as text tables. EXPERIMENTS.md records paper-vs-measured
// values produced by these functions.
package figures

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	nginxapp "flexos/internal/apps/nginx"
	redisapp "flexos/internal/apps/redis"

	"flexos/internal/core"
	"flexos/internal/explore"
	"flexos/internal/oslib"
	"flexos/internal/scenario"
)

// tcbLibs joins every default compartment.
func tcbLibs() []string { return []string{oslib.BootName, oslib.MMName} }

// ConfigPerf is one measured configuration of the Figure 6 space.
type ConfigPerf struct {
	ID           int
	Label        string
	Compartments int
	Hardened     int
	Perf         float64 // requests/s
}

// Fig6Redis measures the 80-configuration Redis space (Figure 6 top):
// MPK+DSS isolation, 5 partitions x 16 per-component hardening sets.
// Results are sorted by throughput ascending, like the paper's plot.
// Measurement fans out over GOMAXPROCS workers (see Fig6RedisWorkers).
func Fig6Redis(requests int) ([]ConfigPerf, error) {
	return Fig6RedisWorkers(context.Background(), requests, 0)
}

// Fig6RedisWorkers is Fig6Redis with an explicit worker count
// (<= 0 selects GOMAXPROCS) and a context bounding the sweep. Results
// are identical for every count.
func Fig6RedisWorkers(ctx context.Context, requests, workers int) ([]ConfigPerf, error) {
	return fig6(ctx, redisapp.Components4(), workers, func(spec core.ImageSpec) (float64, error) {
		res, err := redisapp.Benchmark(spec, requests)
		if err != nil {
			return 0, err
		}
		return res.ReqPerSec, nil
	})
}

// Fig6Nginx measures the Nginx half of the space (Figure 6 bottom).
func Fig6Nginx(requests int) ([]ConfigPerf, error) {
	return Fig6NginxWorkers(context.Background(), requests, 0)
}

// Fig6NginxWorkers is Fig6Nginx with an explicit worker count and a
// context bounding the sweep.
func Fig6NginxWorkers(ctx context.Context, requests, workers int) ([]ConfigPerf, error) {
	return fig6(ctx, nginxapp.Components4(), workers, func(spec core.ImageSpec) (float64, error) {
		res, err := nginxapp.Benchmark(spec, requests)
		if err != nil {
			return 0, err
		}
		return res.ReqPerSec, nil
	})
}

// fig6 sweeps the space through the engine exhaustively (the figure
// plots every point, so the run carries no constraints and nothing
// prunes).
func fig6(ctx context.Context, components [4]string, workers int, measure func(core.ImageSpec) (float64, error)) ([]ConfigPerf, error) {
	cfgs := explore.Fig6Space(components)
	res, err := explore.Engine{}.Run(ctx, explore.Request{
		Space: cfgs,
		Measure: func(c *explore.Config) (explore.Metrics, error) {
			v, err := measure(c.Spec(tcbLibs()))
			return explore.Metrics{Throughput: v}, err
		},
		Workers: workers,
	})
	if err != nil {
		return nil, fmt.Errorf("figures: %w", err)
	}
	out := make([]ConfigPerf, 0, len(cfgs))
	for _, m := range res.Measurements {
		c := m.Config
		out = append(out, ConfigPerf{
			ID: c.ID, Label: c.Label(),
			Compartments: c.NumCompartments(),
			Hardened:     c.HardenedCount(),
			Perf:         m.Perf,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Perf != out[j].Perf {
			return out[i].Perf < out[j].Perf
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// FormatFig6 renders a Figure 6 series as a text table.
func FormatFig6(app string, rows []ConfigPerf) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 (%s): %d configurations, MPK+DSS\n", app, len(rows))
	fmt.Fprintf(&b, "%-6s %-8s %-8s %-12s %s\n", "rank", "comps", "hardened", "req/s", "config")
	for i, r := range rows {
		fmt.Fprintf(&b, "%-6d %-8d %-8d %-12.1fk %s\n", i, r.Compartments, r.Hardened, r.Perf/1000, r.Label)
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "spread: %.1fk .. %.1fk req/s (%.2fx)\n",
			rows[0].Perf/1000, rows[len(rows)-1].Perf/1000, rows[len(rows)-1].Perf/rows[0].Perf)
	}
	return b.String()
}

// ScatterPoint is one Figure 7 point: the same configuration's
// normalized performance under Redis (x) and Nginx (y).
type ScatterPoint struct {
	ID           int
	Compartments int
	RedisNorm    float64
	NginxNorm    float64
}

// Fig7 pairs the two Figure 6 datasets into the normalized scatter plot.
func Fig7(redisRows, nginxRows []ConfigPerf) []ScatterPoint {
	byIDr := make(map[int]ConfigPerf, len(redisRows))
	var rMax, nMax float64
	for _, r := range redisRows {
		byIDr[r.ID] = r
		if r.Perf > rMax {
			rMax = r.Perf
		}
	}
	byIDn := make(map[int]ConfigPerf, len(nginxRows))
	for _, n := range nginxRows {
		byIDn[n.ID] = n
		if n.Perf > nMax {
			nMax = n.Perf
		}
	}
	var pts []ScatterPoint
	for id, r := range byIDr {
		n, ok := byIDn[id]
		if !ok {
			continue
		}
		pts = append(pts, ScatterPoint{
			ID: id, Compartments: r.Compartments,
			RedisNorm: r.Perf / rMax, NginxNorm: n.Perf / nMax,
		})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].ID < pts[j].ID })
	return pts
}

// FormatFig7 renders the scatter as text.
func FormatFig7(pts []ScatterPoint) string {
	var b strings.Builder
	b.WriteString("Figure 7: Nginx vs Redis normalized performance\n")
	fmt.Fprintf(&b, "%-6s %-6s %-12s %-12s\n", "cfg", "comps", "redis-norm", "nginx-norm")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-6d %-6d %-12.3f %-12.3f\n", p.ID, p.Compartments, p.RedisNorm, p.NginxNorm)
	}
	return b.String()
}

// Fig8Result is the partial-safety-ordering outcome over the Redis
// space.
type Fig8Result struct {
	Result           *explore.Result
	Budget           float64
	Stars            []ConfigPerf
	Evaluated, Total int
}

// Fig8 applies partial safety ordering to the Redis configuration space
// with the paper's 500k req/s budget: it returns the safest
// configurations meeting the budget (the stars) and how many
// measurements monotonic pruning saved. Measurement is parallel; see
// Fig8Workers for an explicit worker count.
func Fig8(requests int, budget float64) (*Fig8Result, error) {
	return Fig8Workers(context.Background(), requests, budget, 0)
}

// Fig8Workers is Fig8 with an explicit worker count (<= 0 selects
// GOMAXPROCS) and a context bounding the exploration.
func Fig8Workers(ctx context.Context, requests int, budget float64, workers int) (*Fig8Result, error) {
	cfgs := explore.Fig6Space(redisapp.Components4())
	measure := func(c *explore.Config) (explore.Metrics, error) {
		res, err := redisapp.Benchmark(c.Spec(tcbLibs()), requests)
		if err != nil {
			return explore.Metrics{}, err
		}
		return explore.Metrics{Throughput: res.ReqPerSec}, nil
	}
	res, err := explore.Engine{}.Run(ctx, explore.Request{
		Space:       cfgs,
		Measure:     measure,
		Constraints: []explore.Constraint{explore.BudgetConstraint(scenario.MetricThroughput, budget)},
		Workers:     workers,
		Prune:       true,
	})
	if err != nil && !errors.Is(err, explore.ErrNoFeasible) {
		return nil, err
	}
	out := &Fig8Result{Result: res, Budget: budget, Evaluated: res.Evaluated, Total: res.Total}
	for _, i := range res.Safest {
		m := res.Measurements[i]
		out.Stars = append(out.Stars, ConfigPerf{
			ID: m.Config.ID, Label: m.Config.Label(),
			Compartments: m.Config.NumCompartments(),
			Hardened:     m.Config.HardenedCount(),
			Perf:         m.Perf,
		})
	}
	return out, nil
}

// FormatFig8 renders the exploration outcome.
func FormatFig8(r *Fig8Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: Redis configuration poset, budget %.0fk req/s\n", r.Budget/1000)
	fmt.Fprintf(&b, "evaluated %d/%d configurations (monotonic pruning)\n", r.Evaluated, r.Total)
	fmt.Fprintf(&b, "safest configurations under budget (stars): %d\n", len(r.Stars))
	for _, s := range r.Stars {
		fmt.Fprintf(&b, "  * %-50s %8.1fk req/s\n", s.Label, s.Perf/1000)
	}
	return b.String()
}
