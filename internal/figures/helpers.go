package figures

import (
	iperfapp "flexos/internal/apps/iperf"
	nginxapp "flexos/internal/apps/nginx"
	redisapp "flexos/internal/apps/redis"
	sqliteapp "flexos/internal/apps/sqlite"

	"flexos/internal/core"
)

// redisBenchmark adapts the Redis benchmark to a plain perf value.
func redisBenchmark(spec core.ImageSpec, requests int) (float64, error) {
	res, err := redisapp.Benchmark(spec, requests)
	if err != nil {
		return 0, err
	}
	return res.ReqPerSec, nil
}

// registerApps registers all four applications into a catalog.
func registerApps(cat *core.Catalog) {
	redisapp.Register(cat)
	nginxapp.Register(cat)
	sqliteapp.Register(cat)
	iperfapp.Register(cat)
}
