package figures

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file tests for the figure formatters: the rendered text of
// Figures 6, 7 and 8 and of the multi-metric additions (scenario table,
// Pareto frontier) is compared byte-for-byte against checked-in
// testdata/*.golden files, so any regression in measurement,
// formatting, ordering or the cost model shows up as a CI diff.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/figures -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata/*.golden files")

// goldenRequests keeps the figure sweeps fast; the golden files pin the
// output at this size.
const goldenRequests = 120

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output diverges from %s.\ngot:\n%s\nwant:\n%s\n(re-run with -update if the change is intentional)",
			name, path, got, string(want))
	}
}

func TestGoldenFig6(t *testing.T) {
	redisRows, err := Fig6RedisWorkers(context.Background(), goldenRequests, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig6-redis", FormatFig6("Redis", redisRows))
	nginxRows, err := Fig6NginxWorkers(context.Background(), goldenRequests, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig6-nginx", FormatFig6("Nginx", nginxRows))
}

func TestGoldenFig7(t *testing.T) {
	redisRows, err := Fig6RedisWorkers(context.Background(), goldenRequests, 0)
	if err != nil {
		t.Fatal(err)
	}
	nginxRows, err := Fig6NginxWorkers(context.Background(), goldenRequests, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig7", FormatFig7(Fig7(redisRows, nginxRows)))
}

func TestGoldenFig8(t *testing.T) {
	res, err := Fig8Workers(context.Background(), goldenRequests, 500_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig8", FormatFig8(res))
}

func TestGoldenScenarios(t *testing.T) {
	rows, err := ScenarioTable()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "scenarios", FormatScenarios(rows))
}

func TestGoldenPareto(t *testing.T) {
	res, err := ScenarioPareto(context.Background(), "redis-get90", 0)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "pareto-redis-get90", FormatPareto("redis-get90", res))
}
