package figures

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSV writes one figure's rows as a CSV file under dir, for
// plotting with external tools. The filename is fig<name>.csv.
func WriteCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "fig"+name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

// Fig6CSV converts a Figure 6 series to CSV rows.
func Fig6CSV(rows []ConfigPerf) ([]string, [][]string) {
	header := []string{"rank", "id", "compartments", "hardened", "req_per_s", "label"}
	out := make([][]string, 0, len(rows))
	for i, r := range rows {
		out = append(out, []string{
			strconv.Itoa(i), strconv.Itoa(r.ID), strconv.Itoa(r.Compartments),
			strconv.Itoa(r.Hardened), fmt.Sprintf("%.1f", r.Perf), r.Label,
		})
	}
	return header, out
}

// Fig7CSV converts the scatter to CSV rows.
func Fig7CSV(pts []ScatterPoint) ([]string, [][]string) {
	header := []string{"id", "compartments", "redis_norm", "nginx_norm"}
	out := make([][]string, 0, len(pts))
	for _, p := range pts {
		out = append(out, []string{
			strconv.Itoa(p.ID), strconv.Itoa(p.Compartments),
			fmt.Sprintf("%.4f", p.RedisNorm), fmt.Sprintf("%.4f", p.NginxNorm),
		})
	}
	return header, out
}

// Fig9CSV converts the iPerf sweep to CSV rows.
func Fig9CSV(rows []Fig9Row) ([]string, [][]string) {
	header := []string{"buf_size", "system", "gbps"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(r.BufSize), r.System, fmt.Sprintf("%.4f", r.Gbps),
		})
	}
	return header, out
}

// Fig10CSV converts the SQLite comparison to CSV rows.
func Fig10CSV(rows []Fig10Row) ([]string, [][]string) {
	header := []string{"system", "isolation", "seconds", "measured"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.System, r.Isolation, fmt.Sprintf("%.4f", r.Seconds),
			strconv.FormatBool(r.Measured),
		})
	}
	return header, out
}

// Fig11aCSV converts the allocation latencies to CSV rows.
func Fig11aCSV(rows []Fig11aRow) ([]string, [][]string) {
	header := []string{"strategy", "buffers", "cycles"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Strategy, strconv.Itoa(r.Buffers), strconv.FormatUint(r.Cycles, 10),
		})
	}
	return header, out
}

// Fig11bCSV converts the gate latencies to CSV rows.
func Fig11bCSV(rows []Fig11bRow) ([]string, [][]string) {
	header := []string{"gate", "cycles"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Gate, strconv.FormatUint(r.Cycles, 10)})
	}
	return header, out
}
