package figures

import (
	"context"
	"errors"
	"fmt"
	"strings"

	iperfapp "flexos/internal/apps/iperf"
	sqliteapp "flexos/internal/apps/sqlite"

	"flexos/internal/baseline"
	"flexos/internal/core"
	"flexos/internal/explore"
	"flexos/internal/isolation"
	"flexos/internal/libc"
	"flexos/internal/machine"
	"flexos/internal/netstack"
	"flexos/internal/oslib"
	"flexos/internal/ramfs"
	"flexos/internal/scenario"
	"flexos/internal/timesys"
	"flexos/internal/vfs"
)

// Fig5Node is one node of the Figure 5 hardening lattice.
type Fig5Node struct {
	Label  string
	Perf   float64
	Pruned bool // below the performance budget
	Star   bool // maximal element meeting the budget
}

// Fig5 reproduces the Figure 5 poset subset: a fixed two-compartment
// Redis configuration (app+libc+sched / lwip), varying per-compartment
// hardening over {none, CFI, ASAN, CFI+ASAN}, pruned under a budget.
// Measurement is parallel; see Fig5Workers for an explicit count.
func Fig5(requests int, budget float64) ([]Fig5Node, error) {
	return Fig5Workers(context.Background(), requests, budget, 0)
}

// Fig5Workers is Fig5 with an explicit worker count (<= 0 selects
// GOMAXPROCS) and a context bounding the sweep.
func Fig5Workers(ctx context.Context, requests int, budget float64, workers int) ([]Fig5Node, error) {
	comps := [4]string{"libredis", libc.Name, oslib.SchedName, netstack.Name}
	cfgs := explore.Fig5Space(
		[]string{comps[0], comps[1], comps[2]},
		[]string{comps[3]},
	)
	measure := func(c *explore.Config) (explore.Metrics, error) {
		res, err := redisBenchmark(c.Spec(tcbLibs()), requests)
		if err != nil {
			return explore.Metrics{}, err
		}
		return explore.Metrics{Throughput: res}, nil
	}
	res, err := explore.Engine{}.Run(ctx, explore.Request{
		Space:       cfgs,
		Measure:     measure,
		Constraints: []explore.Constraint{explore.BudgetConstraint(scenario.MetricThroughput, budget)},
		Workers:     workers,
	})
	if err != nil && !errors.Is(err, explore.ErrNoFeasible) {
		return nil, err
	}
	stars := map[int]bool{}
	for _, i := range res.Safest {
		stars[i] = true
	}
	var nodes []Fig5Node
	for i, m := range res.Measurements {
		nodes = append(nodes, Fig5Node{
			Label:  m.Config.Label(),
			Perf:   m.Perf,
			Pruned: m.Evaluated && m.Perf < budget,
			Star:   stars[i],
		})
	}
	return nodes, nil
}

// FormatFig5 renders the lattice as text.
func FormatFig5(nodes []Fig5Node, budget float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: hardening poset (2 compartments), budget %.0fk req/s\n", budget/1000)
	for _, n := range nodes {
		mark := " "
		if n.Star {
			mark = "*"
		} else if n.Pruned {
			mark = "x"
		}
		fmt.Fprintf(&b, " [%s] %-60s %8.1fk req/s\n", mark, n.Label, n.Perf/1000)
	}
	b.WriteString(" [*] = safest under budget, [x] = pruned (perf violation)\n")
	return b.String()
}

// Fig9Row is one Figure 9 series point.
type Fig9Row struct {
	BufSize int
	System  string
	Gbps    float64
}

// Fig9 sweeps the iPerf receive-buffer size (16 B .. 16 KiB) across the
// paper's five variants: Unikraft (== FlexOS NONE by P4), FlexOS NONE,
// MPK2-light (shared call stacks), MPK2-dss (protected stacks + DSS),
// and EPT2.
func Fig9(packets int) ([]Fig9Row, error) {
	sizes := []int{16, 64, 128, 256, 1024, 4096, 16384}
	sysLibs := []string{oslib.BootName, oslib.MMName, libc.Name, oslib.SchedName, netstack.Name}

	specNone := core.ImageSpec{
		Mechanism: "none",
		Comps: []core.CompSpec{{
			Name: "c0", Libs: append(append([]string{}, sysLibs...), iperfapp.Name),
		}},
	}
	mpk2 := func(mode isolation.GateMode, sharing isolation.Sharing) core.ImageSpec {
		return core.ImageSpec{
			Mechanism: "intel-mpk", GateMode: mode, Sharing: sharing,
			Comps: []core.CompSpec{
				{Name: "sys", Libs: sysLibs},
				{Name: "app", Libs: []string{iperfapp.Name}},
			},
		}
	}
	ept2 := mpk2(isolation.GateDefault, isolation.ShareDSS)
	ept2.Mechanism = "vm-ept"

	variants := []struct {
		name string
		spec core.ImageSpec
	}{
		{"Unikraft", specNone}, // identical to FlexOS NONE (P4)
		{"FlexOS NONE", specNone},
		{"FlexOS MPK2-light", mpk2(isolation.GateLight, isolation.ShareStack)},
		{"FlexOS MPK2-dss", mpk2(isolation.GateFull, isolation.ShareDSS)},
		{"FlexOS EPT2", ept2},
	}
	var rows []Fig9Row
	for _, size := range sizes {
		for _, v := range variants {
			res, err := iperfapp.Benchmark(v.spec, size, packets)
			if err != nil {
				return nil, fmt.Errorf("figures: fig9 %s @%dB: %w", v.name, size, err)
			}
			rows = append(rows, Fig9Row{BufSize: size, System: v.name, Gbps: res.Gbps})
		}
	}
	return rows, nil
}

// FormatFig9 renders the sweep as a series table.
func FormatFig9(rows []Fig9Row) string {
	var b strings.Builder
	b.WriteString("Figure 9: iPerf throughput (Gb/s) vs receive buffer size\n")
	order := []string{"Unikraft", "FlexOS NONE", "FlexOS MPK2-light", "FlexOS MPK2-dss", "FlexOS EPT2"}
	bySize := map[int]map[string]float64{}
	var sizes []int
	for _, r := range rows {
		m, ok := bySize[r.BufSize]
		if !ok {
			m = map[string]float64{}
			bySize[r.BufSize] = m
			sizes = append(sizes, r.BufSize)
		}
		m[r.System] = r.Gbps
	}
	fmt.Fprintf(&b, "%-8s", "size")
	for _, s := range order {
		fmt.Fprintf(&b, " %18s", s)
	}
	b.WriteString("\n")
	for _, size := range sizes {
		fmt.Fprintf(&b, "%-8d", size)
		for _, s := range order {
			fmt.Fprintf(&b, " %18.3f", bySize[size][s])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig10Row is one Figure 10 bar.
type Fig10Row struct {
	System    string
	Isolation string
	Seconds   float64 // scaled to the paper's 5000 queries
	Measured  bool    // true = real image run, false = comparator model
}

// Fig10 runs the SQLite benchmark (queries scaled, reported as
// 5000-query time) on Unikraft (== FlexOS NONE), FlexOS NONE, MPK3 and
// EPT2, and composes the Linux, SeL4/Genode, Unikraft-linuxu and
// CubicleOS comparators over the same measured workload shape.
func Fig10(queries int) ([]Fig10Row, error) {
	scale := 5000.0 / float64(queries)
	specs := []struct {
		name, iso string
		spec      core.ImageSpec
	}{
		{"Unikraft", "NONE", sqliteSpecNone()},
		{"FlexOS", "NONE", sqliteSpecNone()},
		{"FlexOS", "MPK3", sqliteSpecMPK3()},
		{"FlexOS", "EPT2", sqliteSpecEPT2()},
	}
	var rows []Fig10Row
	var baseWork uint64
	for _, s := range specs {
		res, err := sqliteapp.Benchmark(s.spec, queries)
		if err != nil {
			return nil, fmt.Errorf("figures: fig10 %s/%s: %w", s.name, s.iso, err)
		}
		if s.name == "FlexOS" && s.iso == "NONE" {
			baseWork = res.Cycles / uint64(res.Queries)
		}
		rows = append(rows, Fig10Row{
			System: s.name, Isolation: s.iso,
			Seconds: res.Seconds * scale, Measured: true,
		})
	}
	w := baseline.Workload{
		Queries:        5000,
		BaseWorkCycles: baseWork,
		FSOps:          sqliteapp.FSOpsPerQuery(),
		TimeOps:        sqliteapp.TimeOpsPerQuery(),
	}
	costs := machine.DefaultCosts()
	for _, cmp := range baseline.Comparators() {
		rows = append(rows, Fig10Row{
			System: cmp.Name(), Isolation: cmp.Isolation(),
			Seconds: baseline.Seconds(cmp, w, costs),
		})
	}
	return rows, nil
}

func sqliteSpecNone() core.ImageSpec {
	return core.ImageSpec{
		Mechanism: "none",
		Comps:     []core.CompSpec{{Name: "c0", Libs: sqliteapp.Components2()}},
	}
}

func sqliteSpecMPK3() core.ImageSpec {
	return core.ImageSpec{
		Mechanism: "intel-mpk",
		GateMode:  isolation.GateFull,
		Sharing:   isolation.ShareDSS,
		Comps: []core.CompSpec{
			{Name: "comp0", Libs: []string{oslib.BootName, oslib.MMName, sqliteapp.Name, libc.Name, oslib.SchedName}},
			{Name: "fs", Libs: []string{vfs.Name, ramfs.Name}},
			{Name: "time", Libs: []string{timesys.Name}},
		},
	}
}

func sqliteSpecEPT2() core.ImageSpec {
	return core.ImageSpec{
		Mechanism: "vm-ept",
		Comps: []core.CompSpec{
			{Name: "comp0", Libs: []string{oslib.BootName, oslib.MMName, sqliteapp.Name, libc.Name, oslib.SchedName}},
			{Name: "fs", Libs: []string{vfs.Name, ramfs.Name, timesys.Name}},
		},
	}
}

// FormatFig10 renders the bars.
func FormatFig10(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString("Figure 10: SQLite, 5000 INSERT queries (seconds)\n")
	for _, r := range rows {
		src := "modeled "
		if r.Measured {
			src = "measured"
		}
		fmt.Fprintf(&b, "%-16s %-6s %9.3fs  (%s)\n", r.System, r.Isolation, r.Seconds, src)
	}
	return b.String()
}

// Fig11aRow is one allocation-latency measurement.
type Fig11aRow struct {
	Strategy string
	Buffers  int
	Cycles   uint64
}

// Fig11a measures the cost of allocating 1-3 shared 1-byte stack
// variables under the three sharing strategies: stack-to-heap conversion,
// DSS, and fully shared stacks (Figure 11a).
func Fig11a() ([]Fig11aRow, error) {
	var rows []Fig11aRow
	for _, strat := range []struct {
		name    string
		sharing isolation.Sharing
	}{
		{"heap", isolation.ShareHeap},
		{"dss", isolation.ShareDSS},
		{"shared-stack", isolation.ShareStack},
	} {
		for buffers := 1; buffers <= 3; buffers++ {
			cycles, err := measureAllocCost(strat.sharing, buffers)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig11aRow{Strategy: strat.name, Buffers: buffers, Cycles: cycles})
		}
	}
	return rows, nil
}

// measureAllocCost builds a 2-compartment image whose isolated component
// has a function allocating n shared 1-byte stack variables, and
// measures the allocation cost alone.
func measureAllocCost(sharing isolation.Sharing, buffers int) (uint64, error) {
	cat := core.NewCatalog()
	oslib.RegisterTCB(cat)
	var allocCycles uint64
	comp := core.NewComponent("alloctest")
	comp.AddFunc(&core.Func{
		Name: "run", Work: 1, EntryPoint: true,
		Impl: func(ctx *core.Ctx, args ...any) (any, error) {
			start := ctx.Machine().Clock.Cycles()
			for i := 0; i < buffers; i++ {
				if _, err := ctx.StackAlloc(1, true); err != nil {
					return nil, err
				}
			}
			allocCycles = ctx.Machine().Clock.Cycles() - start
			return nil, nil
		},
	})
	cat.MustRegister(comp)
	img, err := core.Build(cat, core.ImageSpec{
		Mechanism: "intel-mpk",
		GateMode:  isolation.GateFull,
		Sharing:   sharing,
		Comps: []core.CompSpec{
			{Name: "c0", Libs: []string{oslib.BootName, oslib.MMName}},
			{Name: "c1", Libs: []string{"alloctest"}},
		},
	})
	if err != nil {
		return 0, err
	}
	ctx, err := img.NewContext("t", "alloctest")
	if err != nil {
		return 0, err
	}
	// Warm the allocator (first allocation may take the slow path),
	// then measure, like the paper's microbenchmark loop.
	if _, err := ctx.Call("alloctest", "run"); err != nil {
		return 0, err
	}
	if _, err := ctx.Call("alloctest", "run"); err != nil {
		return 0, err
	}
	return allocCycles, nil
}

// FormatFig11a renders the latencies.
func FormatFig11a(rows []Fig11aRow) string {
	var b strings.Builder
	b.WriteString("Figure 11a: shared stack-variable allocation latency (cycles)\n")
	fmt.Fprintf(&b, "%-14s %-10s %s\n", "strategy", "#buffers", "cycles")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-10d %d\n", r.Strategy, r.Buffers, r.Cycles)
	}
	return b.String()
}

// Fig11bRow is one gate-latency bar.
type Fig11bRow struct {
	Gate   string
	Cycles uint64
}

// Fig11b reports the raw gate latencies: function call, MPK-light,
// MPK-dss (full), EPT RPC, and Linux syscalls with and without KPTI.
// FlexOS gate numbers are measured through real gate objects; syscalls
// come from the calibrated cost model.
func Fig11b() ([]Fig11bRow, error) {
	costs := machine.DefaultCosts()
	measure := func(mech string, mode isolation.GateMode) (uint64, error) {
		cat := core.NewCatalog()
		oslib.RegisterTCB(cat)
		comp := core.NewComponent("target")
		comp.AddFunc(&core.Func{Name: "noop", Work: 0, EntryPoint: true})
		cat.MustRegister(comp)
		img, err := core.Build(cat, core.ImageSpec{
			Mechanism: mech, GateMode: mode, Sharing: isolation.ShareDSS,
			Comps: []core.CompSpec{
				{Name: "c0", Libs: []string{oslib.BootName, oslib.MMName}},
				{Name: "c1", Libs: []string{"target"}},
			},
		})
		if err != nil {
			return 0, err
		}
		ctx, err := img.NewContext("t", oslib.BootName)
		if err != nil {
			return 0, err
		}
		// Warm, then measure one crossing; subtract the frame cost by
		// measuring the raw gate binding too.
		if _, err := ctx.Call("target", "noop"); err != nil {
			return 0, err
		}
		start := img.Mach.Clock.Cycles()
		if _, err := ctx.Call("target", "noop"); err != nil {
			return 0, err
		}
		return img.Mach.Clock.Cycles() - start - costs.StackAlloc, nil
	}

	var rows []Fig11bRow
	rows = append(rows, Fig11bRow{Gate: "function", Cycles: costs.FuncCall})
	light, err := measure("intel-mpk", isolation.GateLight)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Fig11bRow{Gate: "MPK-light", Cycles: light})
	full, err := measure("intel-mpk", isolation.GateFull)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Fig11bRow{Gate: "MPK-dss", Cycles: full})
	ept, err := measure("vm-ept", isolation.GateDefault)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Fig11bRow{Gate: "EPT", Cycles: ept})
	rows = append(rows,
		Fig11bRow{Gate: "syscall-nokpti", Cycles: costs.SyscallNoKPTI},
		Fig11bRow{Gate: "syscall", Cycles: costs.SyscallKPTI},
	)
	return rows, nil
}

// FormatFig11b renders the gate latencies.
func FormatFig11b(rows []Fig11bRow) string {
	var b strings.Builder
	b.WriteString("Figure 11b: gate latencies (cycles, round-trip)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %6d\n", r.Gate, r.Cycles)
	}
	return b.String()
}

// Table1 reproduces the porting-effort table over the shipped catalog.
func Table1() []core.TableOneRow {
	cat := core.NewCatalog()
	oslib.RegisterTCB(cat)
	oslib.RegisterSched(cat)
	libc.Register(cat)
	netstack.Register(cat)
	timesys.Register(cat)
	ramfs.Register(cat)
	vfs.Register(cat)
	registerApps(cat)
	return core.TableOne(cat)
}

// FormatTable1 renders the table.
func FormatTable1(rows []core.TableOneRow) string {
	var b strings.Builder
	b.WriteString("Table 1: porting effort (patch size, shared variables)\n")
	fmt.Fprintf(&b, "%-12s %-12s %s\n", "lib/app", "patch", "shared vars")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s +%d/-%-6d %d\n", r.Lib, r.PatchAdd, r.PatchDel, r.SharedVars)
	}
	return b.String()
}
