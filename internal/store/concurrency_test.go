package store

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"flexos/internal/scenario"
)

// Concurrency regressions for the serving use case: one long-lived
// store handle shared by many explorations, with the owner flushing
// (and eventually closing) while workers are still reading and
// writing through.

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestStoreAfterCloseAppendsNothing pins the shutdown bug: a Store
// call racing Close used to find the writer nil and quietly open a
// fresh segment whose buffered bytes nobody would ever flush —
// leaving a stray, quarantined-on-reopen file behind. After Close,
// Store must degrade to the in-memory index.
func TestStoreAfterCloseAppendsNothing(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Store("k1", scenario.Metrics{Throughput: 1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s.Store("k2", scenario.Metrics{Throughput: 2})
	if m, ok := s.Load("k2"); !ok || m.Throughput != 2 {
		t.Fatalf("post-close Store lost the in-memory entry: %v %v", m, ok)
	}
	if n := len(segFiles(t, dir)); n != 1 {
		t.Fatalf("post-close Store touched disk: %d segment files, want 1", n)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Load("k1"); !ok {
		t.Fatal("k1 not persisted")
	}
	if _, ok := re.Load("k2"); ok {
		t.Fatal("post-close k2 leaked to disk")
	}
	if st := re.Stats(); st.QuarantinedFiles != 0 || st.CorruptRecords != 0 {
		t.Fatalf("reopen found damage: %+v", st)
	}
}

// TestStoreReadWhileFlushHammer drives Load/Store/Len/Stats from many
// goroutines while another loops Flush — the daemon's steady state.
// Run under -race this is the regression net for the split
// index/writer locking; it also asserts no write is lost.
func TestStoreReadWhileFlushHammer(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	flusherDone := make(chan struct{})
	go func() { // the owner, flushing on its own cadence
		defer close(flusherDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Flush(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-%d", g, i)
				s.Store(key, scenario.Metrics{Throughput: float64(g*perWriter + i)})
				if _, ok := s.Load(key); !ok {
					t.Errorf("own write %s not readable", key)
					return
				}
				s.Load(fmt.Sprintf("w%d-%d", (g+1)%writers, i)) // racing reader
				s.Len()
				s.Stats()
			}
		}(g)
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) { // pure readers during write-through
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Load(fmt.Sprintf("w%d-%d", g, i))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-flusherDone

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, want := re.Len(), writers*perWriter; got != want {
		t.Fatalf("reopened store holds %d records, want %d", got, want)
	}
	if st := re.Stats(); st.QuarantinedFiles != 0 || st.CorruptRecords != 0 {
		t.Fatalf("hammer left damage on disk: %+v", st)
	}
}
