package store_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flexos/internal/store"
)

// fill writes the given key->throughput map into a fresh store at dir.
func fill(t *testing.T, dir string, entries map[string]float64) {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range entries {
		s.Store(k, vec(v))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeDisjointUnion(t *testing.T) {
	base := t.TempDir()
	fill(t, filepath.Join(base, "a"), map[string]float64{"ns\x00k1": 1, "ns\x00k2": 2})
	fill(t, filepath.Join(base, "b"), map[string]float64{"ns\x00k3": 3})
	out := filepath.Join(base, "merged")

	st, err := store.Merge(out, filepath.Join(base, "a"), filepath.Join(base, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Inputs != 2 || st.Records != 3 || st.Overlaps != 0 {
		t.Fatalf("merge stats: %+v", st)
	}
	m, err := store.OpenReadOnly(out)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for k, v := range map[string]float64{"ns\x00k1": 1, "ns\x00k2": 2, "ns\x00k3": 3} {
		got, ok := m.Load(k)
		if !ok || got != vec(v) {
			t.Fatalf("merged store missing %q (ok=%v got=%+v)", k, ok, got)
		}
	}
}

func TestMergeIdenticalOverlapDeduplicates(t *testing.T) {
	base := t.TempDir()
	fill(t, filepath.Join(base, "a"), map[string]float64{"ns\x00twin": 5, "ns\x00a": 1})
	fill(t, filepath.Join(base, "b"), map[string]float64{"ns\x00twin": 5, "ns\x00b": 2})

	st, err := store.Merge(filepath.Join(base, "m"), filepath.Join(base, "a"), filepath.Join(base, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 3 || st.Overlaps != 1 {
		t.Fatalf("merge stats: %+v", st)
	}
}

func TestMergeConflictingOverlapFails(t *testing.T) {
	base := t.TempDir()
	fill(t, filepath.Join(base, "a"), map[string]float64{"ns\x00k": 5})
	fill(t, filepath.Join(base, "b"), map[string]float64{"ns\x00k": 6})

	_, err := store.Merge(filepath.Join(base, "m"), filepath.Join(base, "a"), filepath.Join(base, "b"))
	if err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("want conflict error, got %v", err)
	}

	// The error is typed and names the colliding record and both
	// sources, so callers can report exactly what disagreed.
	var ce *store.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("want *store.ConflictError, got %T: %v", err, err)
	}
	if ce.Key != "ns\x00k" || ce.Addr != store.Addr("ns\x00k") {
		t.Fatalf("conflict names key %q addr %q", ce.Key, ce.Addr)
	}
	if ce.DirA != filepath.Join(base, "a") || ce.DirB != filepath.Join(base, "b") {
		t.Fatalf("conflict names dirs %q / %q", ce.DirA, ce.DirB)
	}
	if ce.A == ce.B {
		t.Fatalf("conflict carries identical vectors: %+v", ce.A)
	}
	for _, want := range []string{"ns\\x00k", ce.Addr, ce.DirA, ce.DirB} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("conflict message %q missing %q", err.Error(), want)
		}
	}
}

// TestMergeDeterministicAcrossShardCounts: merging the same logical
// union must produce byte-identical store files however it was split —
// 2 ways, 3 ways, or presented in reversed argument order.
func TestMergeDeterministicAcrossShardCounts(t *testing.T) {
	full := map[string]float64{}
	for i := 0; i < 23; i++ {
		full["ns\x00cfg"+string(rune('a'+i))] = float64(100 + 7*i)
	}
	split := func(base string, parts int) []string {
		dirs := make([]string, parts)
		chunks := make([]map[string]float64, parts)
		for i := range chunks {
			chunks[i] = map[string]float64{}
			dirs[i] = filepath.Join(base, "s"+string(rune('0'+i)))
		}
		i := 0
		for k, v := range full { // map order is random: shard assignment varies run to run
			chunks[i%parts][k] = v
			i++
		}
		for i, c := range chunks {
			fill(t, dirs[i], c)
		}
		return dirs
	}

	segBytes := func(parts int, reverse bool) []byte {
		base := t.TempDir()
		dirs := split(base, parts)
		if reverse {
			for i, j := 0, len(dirs)-1; i < j; i, j = i+1, j-1 {
				dirs[i], dirs[j] = dirs[j], dirs[i]
			}
		}
		out := filepath.Join(base, "merged")
		if _, err := store.Merge(out, dirs...); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(segmentPath(t, out))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	want := segBytes(2, false)
	for _, tc := range []struct {
		parts   int
		reverse bool
	}{{3, false}, {5, false}, {2, true}, {4, true}} {
		if got := segBytes(tc.parts, tc.reverse); string(got) != string(want) {
			t.Fatalf("merged store bytes differ for %d-way split (reverse=%v)", tc.parts, tc.reverse)
		}
	}
}

func TestMergeRefusesNonEmptyOutput(t *testing.T) {
	base := t.TempDir()
	fill(t, filepath.Join(base, "a"), map[string]float64{"ns\x00k": 1})
	out := filepath.Join(base, "out")
	fill(t, out, map[string]float64{"ns\x00old": 2})

	if _, err := store.Merge(out, filepath.Join(base, "a")); err == nil {
		t.Fatal("want error merging into a directory that already holds a store")
	}
}

func TestMergeNoInputsFails(t *testing.T) {
	if _, err := store.Merge(t.TempDir()); err == nil {
		t.Fatal("want error for a merge with no inputs")
	}
}

func TestMergeQuarantinedInputRecordsAreNotPropagated(t *testing.T) {
	base := t.TempDir()
	a := filepath.Join(base, "a")
	fill(t, a, map[string]float64{"ns\x00good": 1})
	// A corrupt sibling segment in the input: quarantined on read,
	// absent from the merge.
	if err := os.WriteFile(filepath.Join(a, "seg-000900.jsonl"), []byte("junk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := store.Merge(filepath.Join(base, "m"), a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 {
		t.Fatalf("merged %d records, want 1", st.Records)
	}
}
