package store_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"flexos/internal/explore"
	"flexos/internal/scenario"
	"flexos/internal/store"
)

func vec(t float64) scenario.Metrics {
	return scenario.Metrics{Throughput: t, P99us: t / 100, PeakMemBytes: uint64(t) + 7, BootCycles: 11, Cycles: 13, Ops: 3}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"ns\x00a", "ns\x00b", "other\x00a", strings.Repeat("k", 300)}
	for i, k := range keys {
		s.Store(k, vec(float64(1000*(i+1))))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.Loaded != len(keys) || st.Segments != 1 || st.QuarantinedFiles != 0 || st.CorruptRecords != 0 {
		t.Fatalf("stats after reload: %+v", st)
	}
	for i, k := range keys {
		m, ok := r.Load(k)
		if !ok {
			t.Fatalf("key %q lost", k)
		}
		if want := vec(float64(1000 * (i + 1))); m != want {
			t.Fatalf("key %q: %+v, want %+v", k, m, want)
		}
	}
	if _, ok := r.Load("ns\x00missing"); ok {
		t.Fatal("phantom key")
	}
	if got := r.Keys(); len(got) != len(keys) || !sortedStrings(got) {
		t.Fatalf("Keys() = %v", got)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// TestWriteThroughThenColdReloadEqualsInMemoryMemo is the satellite
// property: exploring with a store-backed memo, then reloading the
// store cold into a fresh memo, must reproduce the in-memory run
// byte-identically while measuring nothing fresh.
func TestWriteThroughThenColdReloadEqualsInMemoryMemo(t *testing.T) {
	dir := t.TempDir()
	space := func() []*explore.Config { return explore.Fig6Space([4]string{"app", "libc", "sched", "net"}) }
	measure := func(c *explore.Config) (scenario.Metrics, error) {
		return vec(float64(c.Hash()%100_000) + 1), nil
	}
	req := func(memo *explore.Memo) explore.Request {
		return explore.Request{Space: space(), Measure: measure, Workers: 4, Memo: memo, Workload: "rt"}
	}

	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := (explore.Engine{}).Run(context.Background(), req(explore.NewBackedMemo(s)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Written != inMem.Evaluated {
		t.Fatalf("wrote %d records, evaluated %d: write-through must cover every fresh measurement",
			s.Stats().Written, inMem.Evaluated)
	}

	cold, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	warm, err := (explore.Engine{}).Run(context.Background(), req(explore.NewBackedMemo(cold)))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Evaluated != 0 {
		t.Fatalf("cold reload re-measured %d configs", warm.Evaluated)
	}
	if warm.MemoHits != inMem.Evaluated+inMem.MemoHits {
		t.Fatalf("warm hits %d, want %d", warm.MemoHits, inMem.Evaluated+inMem.MemoHits)
	}
	if !reflect.DeepEqual(warm.Safest, inMem.Safest) {
		t.Fatalf("safest diverges: %v vs %v", warm.Safest, inMem.Safest)
	}
	for i := range inMem.Measurements {
		a, b := warm.Measurements[i], inMem.Measurements[i]
		if a.Metrics != b.Metrics || a.Perf != b.Perf || a.Evaluated != b.Evaluated || a.Pruned != b.Pruned {
			t.Fatalf("measurement %d diverges: %+v vs %+v", i, a, b)
		}
	}
}

// segmentPath returns the store's single segment file.
func segmentPath(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil || len(names) != 1 {
		t.Fatalf("want one segment, got %v (%v)", names, err)
	}
	return names[0]
}

// writeStore populates a fresh store with n records keyed k0..k(n-1).
func writeStore(t *testing.T, dir string, n int) {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s.Store(key(i), vec(float64(100+i)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func key(i int) string { return "ns\x00cfg" + string(rune('a'+i)) }

func TestTruncatedSegmentLoadsPrefixNotFatal(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 5)
	seg := segmentPath(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the last record.
	if err := os.WriteFile(seg, data[:len(data)-25], 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Stats()
	if st.Loaded != 4 || st.CorruptRecords != 1 || st.QuarantinedFiles != 0 {
		t.Fatalf("stats after truncation: %+v", st)
	}
	if _, ok := s.Load(key(3)); !ok {
		t.Fatal("intact prefix record lost")
	}
	if _, ok := s.Load(key(4)); ok {
		t.Fatal("truncated record must not load")
	}
}

func TestBadChecksumDropsTailNotFatal(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 4)
	seg := segmentPath(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	// Corrupt record 2 (line index 2: header + record 0 + record 1):
	// bump its throughput without recomputing the checksum.
	lines[2] = strings.Replace(lines[2], `"Throughput":101`, `"Throughput":999`, 1)
	if err := os.WriteFile(seg, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Stats()
	// The tampered record plus the two after it: CorruptRecords counts
	// every record the dropped tail takes with it.
	if st.Loaded != 1 || st.CorruptRecords != 3 {
		t.Fatalf("stats after checksum flip: %+v", st)
	}
	if m, ok := s.Load(key(0)); !ok || m.Throughput != 100 {
		t.Fatalf("record before the damage must survive intact, got %v %v", m, ok)
	}
	if _, ok := s.Load(key(1)); ok {
		t.Fatal("tampered record must not be trusted")
	}
}

func TestFutureVersionFileQuarantinedNotFatal(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 2)
	// A second segment from "the future": right format, newer schema.
	hdr, _ := json.Marshal(map[string]any{"format": store.FormatName, "version": store.Version + 1})
	future := string(hdr) + "\n" + `{"addr":"x","key":"ns` + "\x00" + `zz","metrics":{},"sum":"y"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "seg-999999.jsonl"), []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Stats()
	if st.QuarantinedFiles != 1 || st.Loaded != 2 || st.Segments != 1 {
		t.Fatalf("stats with future segment: %+v", st)
	}
	if _, ok := s.Load("ns\x00zz"); ok {
		t.Fatal("future-version record must not load")
	}
}

func TestForeignAndEmptyFilesQuarantined(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-000001.jsonl"), []byte("not json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-000002.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if st := s.Stats(); st.QuarantinedFiles != 2 || st.Loaded != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestQuarantinedFilesAreNeverDeletedOrOverwritten(t *testing.T) {
	dir := t.TempDir()
	garbage := []byte("precious forensic evidence\n")
	if err := os.WriteFile(filepath.Join(dir, "seg-000001.jsonl"), garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Store(key(0), vec(1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "seg-000001.jsonl"))
	if err != nil || string(data) != string(garbage) {
		t.Fatalf("quarantined file was touched: %q %v", data, err)
	}
	// The append went to a fresh segment and survives a reload.
	r, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Load(key(0)); !ok {
		t.Fatal("append alongside a quarantined file lost")
	}
}

func TestReadOnlyStoreNeverWrites(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 3)
	before, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	s, err := store.OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(key(1)); !ok {
		t.Fatal("read-only store must serve loads")
	}
	s.Store("ns\x00new", vec(9))
	if _, ok := s.Load("ns\x00new"); ok {
		t.Fatal("read-only Store must be a no-op")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("read-only open changed the directory: %d -> %d files", len(before), len(after))
	}
}

func TestOpenReadOnlyMissingDirErrors(t *testing.T) {
	if _, err := store.OpenReadOnly(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("want error for a missing read-only store")
	}
}

func TestAppendAcrossHandlesAccumulates(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 2)
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Store(key(7), vec(777))
	s.Store(key(0), vec(123456)) // duplicate key: first value wins, no rewrite
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.Segments != 2 || st.Loaded != 3 {
		t.Fatalf("stats after append: %+v", st)
	}
	if m, _ := r.Load(key(0)); m.Throughput != 100 {
		t.Fatalf("duplicate key overwrote the original: %v", m)
	}
	if m, _ := r.Load(key(7)); m.Throughput != 777 {
		t.Fatalf("appended record lost: %v", m)
	}
}
