// Package store implements the persistent, content-addressed result
// store behind warm-start exploration: a directory of versioned,
// append-only JSONL segments holding measured metric vectors keyed by
// canonical configuration identity (the engine's memo key — the memo
// namespace joined with Config.Key, addressed by a 64-bit FNV-1a
// digest, the namespaced analogue of Config.Hash).
//
// The store is the second tier of the exploration memo (see
// explore.Backing): the in-memory Memo consults it on a miss and
// writes through to it after every fresh measurement, so a rerun of
// an exploration — in the same process or days later in a CI job that
// restored the directory from a cache — measures only configurations
// the store has never seen. Because measurements are deterministic,
// results are byte-identical whether a run is cold, warm, or mixed,
// at any worker count; only the evaluated/hit statistics move.
//
// # On-disk format
//
// A store directory holds any number of segment files matching
// seg-*.jsonl. Each segment begins with a header line
//
//	{"format":"flexos-result-store","version":1}
//
// followed by one record per line:
//
//	{"addr":"<16-hex FNV-1a of key>","key":"<namespace\x00 configkey>",
//	 "metrics":{...},"sum":"<8-hex CRC-32 of addr+key+metrics>"}
//
// Nothing in a segment is trusted: a file whose header is missing,
// unparsable, names a foreign format, or carries a version this build
// does not know is quarantined — skipped whole, counted in
// Stats.QuarantinedFiles, never deleted. Within a healthy segment,
// the first record that fails to parse, whose checksum or address does
// not match, or that is truncated mid-line ends the segment: the
// records before it load, the rest is counted in
// Stats.CorruptRecords. Corruption is therefore never fatal and never
// poisons an exploration — a damaged entry is simply re-measured and
// re-appended by the next warm run.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"flexos/internal/scenario"
)

// Format identity of segment files. Version bumps whenever the record
// schema changes incompatibly; older builds quarantine newer segments
// rather than misread them.
const (
	FormatName = "flexos-result-store"
	Version    = 1
)

// header is the first line of every segment.
type header struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

// record is one stored measurement.
type record struct {
	Addr    string           `json:"addr"`
	Key     string           `json:"key"`
	Metrics scenario.Metrics `json:"metrics"`
	Sum     string           `json:"sum"`
}

// Stats describes what Open found on disk and what the store has done
// since. The JSON form is part of the flexos-serve /statsz document,
// hence the snake_case tags.
type Stats struct {
	// Segments is the number of healthy segment files loaded.
	Segments int `json:"segments"`
	// Loaded counts records loaded into the index at Open.
	Loaded int `json:"loaded"`
	// QuarantinedFiles counts segment files skipped whole: missing,
	// foreign or future-version headers.
	QuarantinedFiles int `json:"quarantined_files"`
	// CorruptRecords counts records dropped from otherwise-healthy
	// segments: parse failures, checksum or address mismatches, and
	// truncated tails.
	CorruptRecords int `json:"corrupt_records"`
	// Written counts records appended by this store handle.
	Written int `json:"written"`
}

// Store is a persistent result store opened on a directory. Every
// method is safe for concurrent use: Load and Store are called from
// the memo under worker concurrency, and a long-running owner (the
// flexos-serve daemon) may Flush — or even Close — while explorations
// are still reading and writing through. The index and the segment
// writer are guarded separately, so a reader is never blocked behind
// an fsync: Load takes only the index read-lock while Flush holds
// only the writer lock. After Close the store degrades to its
// in-memory index — Load keeps answering, Store records in memory but
// appends nothing (it must not resurrect a segment file nobody will
// flush again).
type Store struct {
	dir      string
	readonly bool

	// mu guards the index and the load-time statistics (written only
	// during open, before the handle is shared).
	mu    sync.RWMutex
	index map[string]scenario.Metrics
	stats Stats

	// wmu guards the append path: the open segment, its buffered
	// writer, the written count, the deferred write error and the
	// closed latch. Never held together with mu, so the two paths
	// cannot deadlock and readers proceed during segment fsyncs.
	wmu     sync.Mutex
	seg     *os.File
	w       *bufio.Writer
	written int
	dirty   bool // appends since the last successful flush
	closed  bool
	err     error // first deferred write error, surfaced by Flush/Close
}

// Open opens (creating if necessary) a store directory for reading and
// appending. Every healthy segment is loaded into the index; corrupt
// or unknown files are quarantined, never trusted and never removed.
func Open(dir string) (*Store, error) { return open(dir, false) }

// OpenReadOnly opens an existing store directory for reading only:
// Store becomes a no-op and no segment file is created. Opening a
// directory that does not exist is an error.
func OpenReadOnly(dir string) (*Store, error) { return open(dir, true) }

func open(dir string, readonly bool) (*Store, error) {
	if readonly {
		info, err := os.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("store: open read-only: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("store: open read-only: %s is not a directory", dir)
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, readonly: readonly, index: make(map[string]scenario.Metrics)}
	if err := s.loadAll(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadAll reads every segment in lexical order, so the index is
// deterministic for a given directory content.
func (s *Store) loadAll() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.jsonl"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := s.loadSegment(name); err != nil {
			return err
		}
	}
	return nil
}

// loadSegment loads one segment file, quarantining it whole on a bad
// header and truncating it logically at the first damaged record. Only
// I/O failures (not content failures) are returned as errors.
func (s *Store) loadSegment(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		s.stats.QuarantinedFiles++ // empty file: no header to trust
		return nil
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.Format != FormatName || h.Version != Version {
		s.stats.QuarantinedFiles++
		return nil
	}
	s.stats.Segments++
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil || !r.valid() {
			// First damaged record: everything after it is suspect
			// (truncation, partial append, bit rot) — drop the tail,
			// counting every record it takes with it.
			dropped := 1
			for sc.Scan() {
				if len(bytes.TrimSpace(sc.Bytes())) > 0 {
					dropped++
				}
			}
			s.stats.CorruptRecords += dropped
			return nil
		}
		if _, dup := s.index[r.Key]; !dup {
			s.index[r.Key] = r.Metrics
			s.stats.Loaded++
		}
	}
	if err := sc.Err(); err != nil {
		// An unscannable tail (e.g. an over-long line) is content
		// damage, not an I/O failure worth aborting the open for.
		s.stats.CorruptRecords++
	}
	return nil
}

// valid recomputes the record's address and checksum.
func (r *record) valid() bool {
	return r.Addr == Addr(r.Key) && r.Sum == checksum(r)
}

// Addr returns the content address of a memo key: the 16-hex-digit
// FNV-1a digest — for the engine's namespaced keys, the namespace ⊕
// Config.Hash identity the index is organized around.
func Addr(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("%016x", h.Sum64())
}

// checksum covers the address, the key and the canonical JSON of the
// metrics vector.
func checksum(r *record) string {
	mx, _ := json.Marshal(r.Metrics)
	c := crc32.NewIEEE()
	c.Write([]byte(r.Addr))
	c.Write([]byte{0})
	c.Write([]byte(r.Key))
	c.Write([]byte{0})
	c.Write(mx)
	return fmt.Sprintf("%08x", c.Sum32())
}

// Load returns the stored vector for a memo key. It implements
// explore.Backing.
func (s *Store) Load(key string) (scenario.Metrics, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.index[key]
	return m, ok
}

// Store appends one measurement (write-through from the memo) and
// indexes it. On a read-only store it is a no-op; after Close it
// indexes in memory only, never reopening a segment. Write errors are
// deferred: they are remembered and surfaced by Flush or Close, so a
// full disk degrades the cache rather than failing the exploration.
// It implements explore.Backing.
func (s *Store) Store(key string, m scenario.Metrics) {
	if s.readonly {
		return
	}
	s.mu.Lock()
	if _, dup := s.index[key]; dup {
		s.mu.Unlock()
		return
	}
	s.index[key] = m
	s.mu.Unlock()

	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	if s.w == nil {
		if err := s.openSegmentLocked(); err != nil {
			s.err = err
			return
		}
	}
	r := record{Addr: Addr(key), Key: key, Metrics: m}
	r.Sum = checksum(&r)
	line, err := json.Marshal(r)
	if err != nil {
		s.err = fmt.Errorf("store: %w", err)
		return
	}
	line = append(line, '\n')
	if _, err := s.w.Write(line); err != nil {
		s.err = fmt.Errorf("store: %w", err)
		return
	}
	s.written++
	s.dirty = true
}

// openSegmentLocked creates a fresh segment for this handle's appends,
// named after the next free index so concurrent shard runs into
// sibling directories never collide.
func (s *Store) openSegmentLocked() error {
	for i := 1; ; i++ {
		name := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.jsonl", i))
		f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if errors.Is(err, os.ErrExist) {
			continue
		}
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.seg = f
		s.w = bufio.NewWriter(f)
		hdr, _ := json.Marshal(header{Format: FormatName, Version: Version})
		if _, err := s.w.Write(append(hdr, '\n')); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		return nil
	}
}

// Flush forces buffered appends to disk and reports the first deferred
// write error. It holds only the writer lock, so concurrent Load and
// Store calls proceed while the segment syncs — a long-running server
// can flush after every request without stalling in-flight
// explorations — and it is a no-op when nothing was appended since
// the last flush, so warm, all-hit traffic costs no fsyncs at all.
func (s *Store) Flush() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.w != nil && s.dirty {
		if err := s.w.Flush(); err != nil && s.err == nil {
			s.err = fmt.Errorf("store: %w", err)
		}
		if err := s.seg.Sync(); err != nil && s.err == nil {
			s.err = fmt.Errorf("store: %w", err)
		}
		if s.err == nil {
			s.dirty = false
		}
	}
	return s.err
}

// Close flushes and closes the open segment. The store is unusable for
// writing afterwards — a straggling Store call indexes in memory but
// appends nothing — and Load keeps working off the in-memory index.
func (s *Store) Close() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	err := s.flushLocked()
	if s.seg != nil {
		if cerr := s.seg.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("store: %w", cerr)
		}
		s.seg, s.w = nil, nil
	}
	s.closed = true
	return err
}

// Len returns the number of indexed measurements.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Keys returns every indexed memo key, sorted.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the open/write statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	st := s.stats
	s.mu.RUnlock()
	s.wmu.Lock()
	st.Written = s.written
	s.wmu.Unlock()
	return st
}

// Dir returns the directory the store was opened on.
func (s *Store) Dir() string { return s.dir }
