package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"flexos/internal/scenario"
)

// MergeStats summarizes a Merge.
type MergeStats struct {
	// Inputs is the number of source stores read.
	Inputs int
	// Records is the number of unique measurements written.
	Records int
	// Overlaps counts keys present in more than one source with
	// identical vectors (canonical twins across shard spaces — legal,
	// deduplicated).
	Overlaps int
	// PerInput holds each source's record count, in argument order.
	PerInput []int
}

// ConflictError is the typed error Merge returns when two input stores
// disagree on a record: the same memo key carries two different metric
// vectors, which means the stores were produced by disagreeing measure
// functions and neither value can be trusted. It names the conflicting
// key, its content address, the two source directories and both
// vectors, so the caller (flexos-merge, a cluster coordinator) can
// report exactly which entry collided and where each side came from.
type ConflictError struct {
	// Key is the conflicting record key (memo namespace NUL-joined
	// with the configuration's canonical identity).
	Key string
	// Addr is the key's 16-hex-digit content address (Addr(Key)).
	Addr string
	// DirA and DirB are the two source store directories holding the
	// disagreeing records, in merge argument order.
	DirA, DirB string
	// A and B are the disagreeing metric vectors, from DirA and DirB.
	A, B scenario.Metrics
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("store: merge: key %q (addr %s) conflicts: %s has %v, %s has %v: the stores were produced by disagreeing measurements",
		e.Key, e.Addr, e.DirA, e.A, e.DirB, e.B)
}

// Merge combines the indexes of several stores (typically one per
// exploration shard) into a fresh store at outDir.
//
// Disjointness is validated: a key held by two sources must carry the
// byte-identical metrics vector in both — identical duplicates are
// tolerated (distinct configurations can share a canonical identity)
// and deduplicated, while a conflicting duplicate aborts the merge,
// since it means the sources were produced by disagreeing measure
// functions and neither value can be trusted.
//
// The merged store is deterministic: records are written to a single
// segment in sorted key order, so merging the same logical union is
// byte-identical however the work was sharded — 2 shards or 16, merged
// in any argument order.
//
// outDir must not already contain a store (any seg-*.jsonl file): a
// merge is a whole-output operation, never an append.
func Merge(outDir string, inDirs ...string) (MergeStats, error) {
	var st MergeStats
	if len(inDirs) == 0 {
		return st, fmt.Errorf("store: merge: no input stores")
	}
	if existing, err := filepath.Glob(filepath.Join(outDir, "seg-*.jsonl")); err != nil {
		return st, fmt.Errorf("store: merge: %w", err)
	} else if len(existing) > 0 {
		return st, fmt.Errorf("store: merge: %s already contains a store (%d segment files); merge writes whole outputs only", outDir, len(existing))
	}

	type owner struct {
		metrics scenario.Metrics
		dir     string
	}
	seen := make(map[string]owner)
	for _, dir := range inDirs {
		in, err := OpenReadOnly(dir)
		if err != nil {
			return st, fmt.Errorf("store: merge: %w", err)
		}
		st.Inputs++
		n := 0
		for _, key := range in.Keys() {
			m, _ := in.Load(key)
			n++
			prev, dup := seen[key]
			if !dup {
				seen[key] = owner{metrics: m, dir: dir}
				continue
			}
			if prev.metrics != m {
				return st, &ConflictError{
					Key: key, Addr: Addr(key),
					DirA: prev.dir, DirB: dir,
					A: prev.metrics, B: m,
				}
			}
			st.Overlaps++
		}
		st.PerInput = append(st.PerInput, n)
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return st, fmt.Errorf("store: merge: %w", err)
	}
	out, err := Open(outDir)
	if err != nil {
		return st, fmt.Errorf("store: merge: %w", err)
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out.Store(k, seen[k].metrics)
	}
	st.Records = len(keys)
	if err := out.Close(); err != nil {
		return st, err
	}
	return st, nil
}
