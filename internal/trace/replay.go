package trace

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"time"

	"flexos/internal/cli"
	"flexos/internal/machine"
)

// ScheduleOpts re-times a trace into a wall-clock issue schedule.
type ScheduleOpts struct {
	// Speedup divides trace-time gaps (2 = replay twice as fast;
	// <= 0 or 1 = real time). Ignored when Rate is set.
	Speedup float64
	// Rate, when > 0, discards trace timing and issues uniformly at
	// Rate requests per second, preserving trace order.
	Rate float64
	// DurationMs, when > 0, truncates the trace to its first
	// DurationMs milliseconds of trace time (before Speedup).
	DurationMs int64
}

// Scheduled is one entry of the issue schedule: the Index-th request
// of the replay, issued AtMs milliseconds after replay start.
type Scheduled struct {
	Index   int
	AtMs    int64
	Phase   string
	Request cli.Request
}

// BuildSchedule derives the issue schedule from (trace, opts) alone —
// before any connection exists — so the request sequence is a pure
// function of its inputs. Replay workers consume the schedule in index
// order whatever the connection count, which is what makes replay
// byte-identical at any -conns: concurrency changes who waits, never
// what is sent or in which order.
func BuildSchedule(t *Trace, o ScheduleOpts) []Scheduled {
	speedup := o.Speedup
	if speedup <= 0 {
		speedup = 1
	}
	sched := make([]Scheduled, 0, len(t.Events))
	for _, ev := range t.Events {
		if o.DurationMs > 0 && ev.AtMs > o.DurationMs {
			break
		}
		at := int64(float64(ev.AtMs) / speedup)
		if o.Rate > 0 {
			at = int64(float64(len(sched)) * 1000 / o.Rate)
		}
		sched = append(sched, Scheduled{Index: len(sched), AtMs: at, Phase: ev.Phase, Request: ev.Request})
	}
	return sched
}

// DumpSchedule renders the schedule one line per request — issue time,
// phase, canonical request JSON. CI byte-compares dumps produced at
// different -conns to enforce the determinism contract without
// needing a server at all.
func DumpSchedule(w io.Writer, sched []Scheduled) error {
	for _, s := range sched {
		if _, err := fmt.Fprintf(w, "%8dms %-10s %s\n", s.AtMs, s.Phase, s.Request.Encode()); err != nil {
			return err
		}
	}
	return nil
}

// ReplayOpts configures a replay run.
type ReplayOpts struct {
	// Client targets the daemon (or coordinator). Required.
	Client *cli.Client
	// Conns caps concurrent in-flight requests (<= 0: 4).
	Conns int
	// ClosedLoop ignores the schedule's timestamps: each connection
	// issues the next request as soon as its previous one completes —
	// the saturation mode benchmarks use. The default is open loop:
	// requests are issued at their scheduled times whether or not
	// earlier ones have returned (queueing when all connections are
	// busy), which is how real traffic behaves and what keeps measured
	// latency honest under overload.
	ClosedLoop bool
	// Seed is echoed into the report (it pinned the trace synthesis).
	Seed int64
}

// LatencyMs is a nearest-rank latency summary in milliseconds,
// reduced with the same machine.LatencySampler the scenario layer
// uses — one percentile definition across the whole repo.
type LatencyMs struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// latencyOf reduces nanosecond samples to the wire summary.
func latencyOf(s *machine.LatencySampler) LatencyMs {
	ms := func(ns uint64) float64 { return float64(ns) / 1e6 }
	return LatencyMs{
		Count: s.Count(),
		P50:   ms(s.Percentile(50)),
		P95:   ms(s.Percentile(95)),
		P99:   ms(s.Percentile(99)),
		Max:   ms(s.Max()),
	}
}

// PhaseReport is one phase's slice of a replay report.
type PhaseReport struct {
	Phase    string    `json:"phase"`
	Requests int       `json:"requests"`
	Failed   int       `json:"failed"`
	Latency  LatencyMs `json:"latency"`
}

// Report is the machine-readable outcome of a replay — what
// flexos-loadgen writes as JSON and CI asserts on.
type Report struct {
	Trace   string  `json:"trace"`
	Seed    int64   `json:"seed"`
	Conns   int     `json:"conns"`
	Mode    string  `json:"mode"` // "open" or "closed"
	WallMs  int64   `json:"wall_ms"`
	Issued  int     `json:"issued"`
	Ok      int     `json:"ok"`
	Failed  int     `json:"failed"`
	Retries int64   `json:"retries"`
	Rps     float64 `json:"throughput_rps"`
	// Latency aggregates every request; Phases break it out per phase
	// in first-appearance order.
	Latency LatencyMs     `json:"latency"`
	Phases  []PhaseReport `json:"phases"`
	// ResponseSum is an FNV-1a digest over the per-request response
	// reports in schedule order (failed requests contribute a fixed
	// marker). Two replays of one (trace, seed, speedup) agree on it at
	// any connection count — the determinism contract, as one number.
	ResponseSum string `json:"response_sum"`
	// Errors samples the first few failure messages for humans.
	Errors []string `json:"errors,omitempty"`
}

// Replay issues the schedule against the target and aggregates the
// report. Context cancellation stops issuing and returns the partial
// report with an error.
func Replay(ctx context.Context, name string, sched []Scheduled, o ReplayOpts) (*Report, error) {
	conns := o.Conns
	if conns <= 0 {
		conns = 4
	}
	if o.Client == nil {
		return nil, fmt.Errorf("trace: replay: no client")
	}
	mode := "open"
	if o.ClosedLoop {
		mode = "closed"
	}
	rep := &Report{Trace: name, Seed: o.Seed, Conns: conns, Mode: mode}

	// jobs carries schedule indices; its buffer holds the whole
	// schedule so the open-loop dispatcher never blocks on slow
	// workers — queueing delay lands in measured latency, where an
	// open-loop generator must put it.
	jobs := make(chan int, len(sched))
	hashes := make([]uint64, len(sched))
	var (
		mu       sync.Mutex
		all      machine.LatencySampler
		perPhase = map[string]*machine.LatencySampler{}
		order    []string
		phaseReq = map[string]int{}
		phaseErr = map[string]int{}
	)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				s := sched[idx]
				req := s.Request
				req.Stream = false
				t0 := time.Now()
				res, err := o.Client.Explore(ctx, req)
				lat := time.Since(t0)
				h := fnv.New64a()
				if err != nil {
					io.WriteString(h, "error")
				} else {
					io.WriteString(h, res.Report)
				}
				hashes[s.Index] = h.Sum64()
				mu.Lock()
				if _, seen := perPhase[s.Phase]; !seen {
					perPhase[s.Phase] = &machine.LatencySampler{}
					order = append(order, s.Phase)
				}
				phaseReq[s.Phase]++
				if err != nil {
					phaseErr[s.Phase]++
					rep.Failed++
					if len(rep.Errors) < 5 {
						rep.Errors = append(rep.Errors, err.Error())
					}
				} else {
					rep.Ok++
					all.Record(uint64(lat.Nanoseconds()))
					perPhase[s.Phase].Record(uint64(lat.Nanoseconds()))
				}
				mu.Unlock()
			}
		}()
	}

	// Dispatch in schedule order. Open loop honors each entry's issue
	// time; closed loop hands the whole schedule over and lets the
	// connections pace themselves.
	var derr error
dispatch:
	for i := range sched {
		if !o.ClosedLoop {
			if d := time.Duration(sched[i].AtMs)*time.Millisecond - time.Since(start); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					derr = ctx.Err()
					break dispatch
				}
			}
		}
		select {
		case <-ctx.Done():
			derr = ctx.Err()
			break dispatch
		default:
		}
		jobs <- i
		rep.Issued++
	}
	close(jobs)
	wg.Wait()

	rep.WallMs = time.Since(start).Milliseconds()
	if secs := float64(rep.WallMs) / 1000; secs > 0 {
		rep.Rps = float64(rep.Ok) / secs
	}
	rep.Latency = latencyOf(&all)
	for _, ph := range order {
		rep.Phases = append(rep.Phases, PhaseReport{
			Phase:    ph,
			Requests: phaseReq[ph],
			Failed:   phaseErr[ph],
			Latency:  latencyOf(perPhase[ph]),
		})
	}
	sum := fnv.New64a()
	for i := 0; i < rep.Issued; i++ {
		fmt.Fprintf(sum, "%016x\n", hashes[i])
	}
	rep.ResponseSum = fmt.Sprintf("%016x", sum.Sum64())
	return rep, derr
}
