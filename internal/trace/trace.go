// Package trace gives the serving stack a traffic dimension: a
// versioned, checksummed JSONL trace format of timestamped exploration
// requests, a deterministic seeded synthesizer that composes the
// scenario library into phase schedules (diurnal ramps, flash crowds,
// phase shifts), and the record/replay machinery flexos-loadgen drives
// against a flexos-serve daemon or a cluster coordinator.
//
// A trace file is one JSON document per line:
//
//	{"format":"flexos-trace","version":1,"name":…,"seed":…}
//	{"at_ms":0,"phase":"night","request":{…},"sum":"crc32hex"}
//	{"at_ms":740,"phase":"night","request":{…},"sum":"crc32hex"}
//	…
//
// The header names the format and its version; every event carries a
// CRC-32 checksum over its timestamp, phase and request bytes. The
// decoder mirrors internal/store's damage semantics: a missing,
// foreign or future-versioned header quarantines the whole file
// (ErrQuarantined — the data may be valuable, but it is not ours to
// guess at), while a corrupt event line truncates the trace at the
// last good event — the events before it load, the rest is counted in
// Stats.CorruptEvents and never served.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"flexos/internal/cli"
)

// Format identity of a trace file's header line.
const (
	FormatName = "flexos-trace"
	Version    = 1
)

// MaxEventBytes caps one trace line; requests themselves are already
// capped at cli.MaxRequestBytes, the rest is envelope.
const MaxEventBytes = cli.MaxRequestBytes + 4096

// ErrQuarantined marks a file the decoder refused to touch: no header,
// a foreign format name, or a version newer than this build writes.
var ErrQuarantined = errors.New("trace: quarantined")

// Event is one timestamped request of a trace: at AtMs milliseconds
// into the trace, a client issues Request. Phase labels the traffic
// regime the synthesizer (or recorder) assigned, so replay reports can
// break latency out per phase.
type Event struct {
	AtMs    int64
	Phase   string
	Request cli.Request
}

// Trace is a decoded trace: identity plus events in non-decreasing
// timestamp order.
type Trace struct {
	Name        string
	Seed        int64
	Description string
	Events      []Event
}

// Stats reports what a decode survived.
type Stats struct {
	// Events is the number of events loaded.
	Events int
	// CorruptEvents counts trailing lines dropped at the truncation
	// point: the first line with a bad checksum, malformed JSON, an
	// invalid request or a time regression, plus everything after it.
	CorruptEvents int
}

// DurationMs is the trace-time span: the timestamp of the last event.
func (t *Trace) DurationMs() int64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].AtMs
}

// Phases lists the distinct phase labels in first-appearance order.
func (t *Trace) Phases() []string {
	seen := make(map[string]struct{})
	var out []string
	for _, ev := range t.Events {
		if _, dup := seen[ev.Phase]; !dup {
			seen[ev.Phase] = struct{}{}
			out = append(out, ev.Phase)
		}
	}
	return out
}

// header is the first line of a trace file.
type header struct {
	Format      string `json:"format"`
	Version     int    `json:"version"`
	Name        string `json:"name,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	Description string `json:"description,omitempty"`
}

// wireEvent is one event line. Request stays raw so the checksum
// covers the exact bytes on disk.
type wireEvent struct {
	AtMs    int64           `json:"at_ms"`
	Phase   string          `json:"phase,omitempty"`
	Request json.RawMessage `json:"request"`
	Sum     string          `json:"sum"`
}

// eventSum checksums an event's identity: timestamp, phase and the
// request bytes, NUL-separated (none of the fields may contain NUL —
// JSON escapes it).
func eventSum(atMs int64, phase string, request []byte) string {
	h := crc32.NewIEEE()
	fmt.Fprintf(h, "%d\x00%s\x00", atMs, phase)
	h.Write(request)
	return fmt.Sprintf("%08x", h.Sum32())
}

// Encode writes the trace in the canonical on-disk form: requests are
// normalized and canonically encoded, so Encode∘Decode is the identity
// on the bytes and Decode∘Encode the identity on the value.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(header{Format: FormatName, Version: Version, Name: t.Name, Seed: t.Seed, Description: t.Description})
	if err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	for i, ev := range t.Events {
		if i > 0 && ev.AtMs < t.Events[i-1].AtMs {
			return fmt.Errorf("trace: encode: event %d at %dms precedes event %d at %dms", i, ev.AtMs, i-1, t.Events[i-1].AtMs)
		}
		req := ev.Request.Encode()
		line, err := json.Marshal(wireEvent{AtMs: ev.AtMs, Phase: ev.Phase, Request: req, Sum: eventSum(ev.AtMs, ev.Phase, req)})
		if err != nil {
			return fmt.Errorf("trace: encode event %d: %w", i, err)
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Decode reads a trace. A bad header returns an error wrapping
// ErrQuarantined and no trace; a corrupt event truncates — the events
// decoded so far return, with the dropped line count in
// Stats.CorruptEvents, and err stays nil (damage downstream of the
// header is data loss to report, not a reason to refuse the prefix).
func Decode(r io.Reader) (*Trace, Stats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxEventBytes)
	if !sc.Scan() {
		return nil, Stats{}, fmt.Errorf("%w: empty input (no header)", ErrQuarantined)
	}
	var hdr header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, Stats{}, fmt.Errorf("%w: unreadable header: %v", ErrQuarantined, err)
	}
	if hdr.Format != FormatName {
		return nil, Stats{}, fmt.Errorf("%w: format %q is not %q", ErrQuarantined, hdr.Format, FormatName)
	}
	if hdr.Version > Version {
		return nil, Stats{}, fmt.Errorf("%w: version %d is newer than this build's %d", ErrQuarantined, hdr.Version, Version)
	}
	t := &Trace{Name: hdr.Name, Seed: hdr.Seed, Description: hdr.Description}
	var st Stats
	truncated := false
	for sc.Scan() {
		if truncated {
			st.CorruptEvents++
			continue
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, ok := decodeEvent(line, t)
		if !ok {
			truncated = true
			st.CorruptEvents++
			continue
		}
		t.Events = append(t.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, Stats{}, fmt.Errorf("trace: read: %w", err)
	}
	st.Events = len(t.Events)
	return t, st, nil
}

// decodeEvent validates one event line against the trace so far: JSON
// shape, checksum, a request that fully decodes under the serving
// guardrails, and a timestamp that does not regress.
func decodeEvent(line []byte, t *Trace) (Event, bool) {
	var we wireEvent
	if err := json.Unmarshal(line, &we); err != nil {
		return Event{}, false
	}
	if we.AtMs < 0 || len(we.Request) == 0 || len(we.Request) > cli.MaxRequestBytes {
		return Event{}, false
	}
	if we.Sum != eventSum(we.AtMs, we.Phase, we.Request) {
		return Event{}, false
	}
	req, err := cli.DecodeRequest(we.Request)
	if err != nil {
		return Event{}, false
	}
	if n := len(t.Events); n > 0 && we.AtMs < t.Events[n-1].AtMs {
		return Event{}, false
	}
	return Event{AtMs: we.AtMs, Phase: we.Phase, Request: req}, true
}

// ReadFile decodes the trace at path.
func ReadFile(path string) (*Trace, Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Stats{}, err
	}
	defer f.Close()
	return Decode(f)
}

// WriteFile encodes the trace to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Recorder appends events to a trace file as they happen — the
// "record" half of record/replay. It stamps each event with the
// caller-supplied trace time, enforcing monotonicity, so a proxy in
// front of a daemon can capture live traffic for later replay.
type Recorder struct {
	w      *bufio.Writer
	c      io.Closer
	lastMs int64
	events int
}

// NewRecorder writes the header and returns a recorder appending to w.
func NewRecorder(w io.Writer, name string, seed int64) (*Recorder, error) {
	rec := &Recorder{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		rec.c = c
	}
	hdr, err := json.Marshal(header{Format: FormatName, Version: Version, Name: name, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("trace: record header: %w", err)
	}
	rec.w.Write(hdr)
	rec.w.WriteByte('\n')
	return rec, nil
}

// Record appends one event at atMs milliseconds of trace time. Events
// must arrive in non-decreasing time order.
func (rec *Recorder) Record(atMs int64, phase string, req cli.Request) error {
	if atMs < rec.lastMs {
		return fmt.Errorf("trace: record: event at %dms precedes the previous at %dms", atMs, rec.lastMs)
	}
	rec.lastMs = atMs
	raw := req.Encode()
	line, err := json.Marshal(wireEvent{AtMs: atMs, Phase: phase, Request: raw, Sum: eventSum(atMs, phase, raw)})
	if err != nil {
		return fmt.Errorf("trace: record event: %w", err)
	}
	rec.w.Write(line)
	rec.w.WriteByte('\n')
	rec.events++
	return nil
}

// Events returns how many events the recorder has appended.
func (rec *Recorder) Events() int { return rec.events }

// Close flushes (and closes the underlying writer when it can).
func (rec *Recorder) Close() error {
	if err := rec.w.Flush(); err != nil {
		return err
	}
	if rec.c != nil {
		return rec.c.Close()
	}
	return nil
}
