package trace

import (
	"fmt"

	"flexos/internal/cli"
)

// MixEntry is one weighted request of a phase's traffic mix.
type MixEntry struct {
	// Weight is the relative draw probability (>= 1).
	Weight int
	// Request is the exploration request issued when this entry is
	// drawn. It is normalized at synthesis time.
	Request cli.Request
}

// PhaseSpec describes one traffic regime of a synthetic trace.
type PhaseSpec struct {
	// Name labels the phase in events and replay reports.
	Name string
	// DurationMs is the phase length in trace time.
	DurationMs int64
	// Rate is the mean arrival rate in requests per second of trace
	// time. Arrivals are jittered uniformly in [0.5, 1.5] of the mean
	// interval — bursty enough to be interesting, bounded enough to
	// stay deterministic across platforms.
	Rate float64
	// Mix is the weighted request mix the phase draws from.
	Mix []MixEntry
}

// SynthSpec is a full synthesis recipe: an ordered phase schedule and
// the seed that pins every arrival time and mix draw.
type SynthSpec struct {
	Name        string
	Description string
	Seed        int64
	Phases      []PhaseSpec
}

// rng is splitmix64: tiny, seedable, and stable across platforms and
// Go releases — unlike math/rand, whose stream is not a format
// guarantee. Trace synthesis must be reproducible byte-for-byte from
// (spec, seed) forever, so the generator is pinned here.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Synthesize renders a spec into a trace. The same spec always yields
// the same trace: arrivals and mix draws come from a splitmix64 stream
// seeded by (Seed, phase index), so editing one phase never perturbs
// the others.
func Synthesize(spec SynthSpec) (*Trace, error) {
	if len(spec.Phases) == 0 {
		return nil, fmt.Errorf("trace: synthesize %q: no phases", spec.Name)
	}
	t := &Trace{Name: spec.Name, Seed: spec.Seed, Description: spec.Description}
	var baseMs int64
	for pi, ph := range spec.Phases {
		if ph.DurationMs <= 0 || ph.Rate <= 0 {
			return nil, fmt.Errorf("trace: synthesize %q: phase %q needs positive duration and rate", spec.Name, ph.Name)
		}
		if len(ph.Mix) == 0 {
			return nil, fmt.Errorf("trace: synthesize %q: phase %q has an empty mix", spec.Name, ph.Name)
		}
		totalW := 0
		for _, m := range ph.Mix {
			if m.Weight < 1 {
				return nil, fmt.Errorf("trace: synthesize %q: phase %q has a non-positive mix weight", spec.Name, ph.Name)
			}
			totalW += m.Weight
		}
		r := rng{s: uint64(spec.Seed)*0x9e3779b97f4a7c15 + uint64(pi)}
		meanMs := 1000 / ph.Rate
		// Start half a mean interval in so a phase boundary is not
		// always an arrival, then jitter each gap in [0.5, 1.5]·mean.
		at := 0.5 * meanMs
		for at < float64(ph.DurationMs) {
			draw := r.intn(totalW)
			var req cli.Request
			for _, m := range ph.Mix {
				if draw -= m.Weight; draw < 0 {
					req = m.Request
					break
				}
			}
			req.Normalize()
			t.Events = append(t.Events, Event{AtMs: baseMs + int64(at), Phase: ph.Name, Request: req})
			at += (0.5 + r.float()) * meanMs
		}
		baseMs += ph.DurationMs
	}
	if len(t.Events) == 0 {
		return nil, fmt.Errorf("trace: synthesize %q: schedule produced no events (rates too low for the durations)", spec.Name)
	}
	return t, nil
}

// Shapes the synthesizer ships. Each returns a spec whose phase
// durations scale to durationMs and whose every byte is pinned by
// seed. The mixes draw on the scenario library — including phased
// schedules, so a synthetic trace exercises the time-varying workload
// path end to end.
var Shapes = map[string]func(seed, durationMs int64) SynthSpec{
	"diurnal": DiurnalSpec,
	"flash":   FlashSpec,
	"shift":   ShiftSpec,
}

// DiurnalSpec models a day compressed into durationMs: a quiet
// read-heavy night, a busy mixed day ramp, and an evening flash crowd
// that narrows the mix and triples the rate.
func DiurnalSpec(seed, durationMs int64) SynthSpec {
	night, day := durationMs*2/5, durationMs*2/5
	crowd := durationMs - night - day
	return SynthSpec{
		Name:        "diurnal",
		Description: "night / day ramp / evening flash crowd over redis traffic",
		Seed:        seed,
		Phases: []PhaseSpec{
			{Name: "night", DurationMs: night, Rate: 1.0, Mix: []MixEntry{
				{Weight: 3, Request: cli.Request{Scenario: "redis-get100"}},
				{Weight: 1, Request: cli.Request{Scenario: "redis-get90"}},
			}},
			{Name: "day", DurationMs: day, Rate: 2.0, Mix: []MixEntry{
				{Weight: 2, Request: cli.Request{Scenario: "redis-get90"}},
				{Weight: 2, Request: cli.Request{Scenario: "redis-get50"}},
				{Weight: 1, Request: cli.Request{Scenario: "redis-get90*2+redis-get50"}},
				{Weight: 1, Request: cli.Request{Scenario: "redis-pipe8", Budgets: []string{"throughput>=200000"}}},
			}},
			{Name: "crowd", DurationMs: crowd, Rate: 3.0, Mix: []MixEntry{
				{Weight: 3, Request: cli.Request{Scenario: "redis-get50"}},
				{Weight: 1, Request: cli.Request{Scenario: "redis-get50+redis-pipe8", Pareto: true}},
			}},
		},
	}
}

// FlashSpec models steady nginx traffic interrupted by a flash crowd.
func FlashSpec(seed, durationMs int64) SynthSpec {
	steady := durationMs * 3 / 5
	flash := durationMs/5 + 1
	cool := durationMs - steady - flash
	return SynthSpec{
		Name:        "flash",
		Description: "steady nginx traffic, a flash crowd, and a cooldown",
		Seed:        seed,
		Phases: []PhaseSpec{
			{Name: "steady", DurationMs: steady, Rate: 1.2, Mix: []MixEntry{
				{Weight: 2, Request: cli.Request{Scenario: "nginx-static"}},
				{Weight: 1, Request: cli.Request{Scenario: "nginx-keep75"}},
			}},
			{Name: "flash", DurationMs: flash, Rate: 4.0, Mix: []MixEntry{
				{Weight: 1, Request: cli.Request{Scenario: "nginx-keepalive"}},
			}},
			{Name: "cooldown", DurationMs: cool, Rate: 1.0, Mix: []MixEntry{
				{Weight: 1, Request: cli.Request{Scenario: "nginx-static+nginx-keepalive*2"}},
			}},
		},
	}
}

// ShiftSpec models a workload whose composition flips mid-trace — the
// regime where the best configuration shifts with the traffic (the
// adaptive-reconfig story).
func ShiftSpec(seed, durationMs int64) SynthSpec {
	half := durationMs / 2
	return SynthSpec{
		Name:        "shift",
		Description: "read-heavy first half, pipelined-write second half",
		Seed:        seed,
		Phases: []PhaseSpec{
			{Name: "reads", DurationMs: half, Rate: 2.0, Mix: []MixEntry{
				{Weight: 3, Request: cli.Request{Scenario: "redis-get100"}},
				{Weight: 1, Request: cli.Request{Scenario: "redis-get90"}},
			}},
			{Name: "writes", DurationMs: durationMs - half, Rate: 2.0, Mix: []MixEntry{
				{Weight: 2, Request: cli.Request{Scenario: "redis-pipe8"}},
				{Weight: 1, Request: cli.Request{Scenario: "redis-get50*2+redis-pipe8"}},
			}},
		},
	}
}
