package trace_test

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"flexos/internal/cli"
	"flexos/internal/trace"
)

// fixturePath is the checked-in 30-second synthetic trace CI replays
// against the compose cluster; the fuzzer seeds from it too, so the
// corpus always covers the exact bytes production jobs consume.
const fixturePath = "../../ci/traces/smoke-30s.jsonl"

// smallTrace synthesizes a deterministic few-event trace for tests.
func smallTrace(t testing.TB, seed int64) *trace.Trace {
	t.Helper()
	tr, err := trace.Synthesize(trace.DiurnalSpec(seed, 8000))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := smallTrace(t, 42)
	b := smallTrace(t, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (spec, seed) synthesized different traces")
	}
	c := smallTrace(t, 43)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds synthesized identical traces")
	}
	if len(a.Events) == 0 {
		t.Fatal("no events")
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].AtMs < a.Events[i-1].AtMs {
			t.Fatalf("events out of order at %d: %d < %d", i, a.Events[i].AtMs, a.Events[i-1].AtMs)
		}
	}
	if got := a.Phases(); !reflect.DeepEqual(got, []string{"night", "day", "crowd"}) {
		t.Fatalf("phases = %v", got)
	}
	// Every shipped shape synthesizes cleanly at a CI-sized duration.
	for name, shape := range trace.Shapes {
		if _, err := trace.Synthesize(shape(7, 30000)); err != nil {
			t.Errorf("shape %s: %v", name, err)
		}
	}
}

func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	tr := smallTrace(t, 42)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, st, err := trace.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.CorruptEvents != 0 || st.Events != len(tr.Events) {
		t.Fatalf("stats = %+v, want %d clean events", st, len(tr.Events))
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("decode(encode(t)) != t")
	}
	var again bytes.Buffer
	if err := got.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), buf.Bytes()) {
		t.Fatal("encode not byte-stable across a round trip")
	}
}

func TestDecodeQuarantine(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"not json":       "hello\n",
		"foreign format": `{"format":"flexos-result-store","version":1}` + "\n",
		"future version": fmt.Sprintf(`{"format":%q,"version":%d}`, trace.FormatName, trace.Version+1) + "\n",
	}
	for name, in := range cases {
		tr, _, err := trace.Decode(strings.NewReader(in))
		if err == nil || tr != nil {
			t.Errorf("%s: decode accepted (err=%v)", name, err)
			continue
		}
		if !strings.Contains(err.Error(), "quarantined") {
			t.Errorf("%s: error %v does not mark quarantine", name, err)
		}
	}
}

func TestDecodeCorruptionTruncates(t *testing.T) {
	tr := smallTrace(t, 42)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("trace too small to corrupt: %d lines", len(lines))
	}
	corrupt := func(t *testing.T, mutate func([]string) []string, wantPrefix int) {
		t.Helper()
		in := strings.Join(mutate(append([]string(nil), lines...)), "\n") + "\n"
		got, st, err := trace.Decode(strings.NewReader(in))
		if err != nil {
			t.Fatalf("corruption must truncate, not fail: %v", err)
		}
		if st.Events != wantPrefix {
			t.Errorf("loaded %d events, want the %d-event prefix", st.Events, wantPrefix)
		}
		if st.CorruptEvents == 0 {
			t.Error("corruption not counted")
		}
		if !reflect.DeepEqual(got.Events, tr.Events[:wantPrefix]) {
			t.Error("surviving prefix differs from the original events")
		}
	}
	t.Run("flipped checksum", func(t *testing.T) {
		corrupt(t, func(ls []string) []string {
			ls[3] = strings.Replace(ls[3], `"sum":"`, `"sum":"f`, 1)
			return ls
		}, 2)
	})
	t.Run("malformed json", func(t *testing.T) {
		corrupt(t, func(ls []string) []string {
			ls[2] = ls[2][:len(ls[2])/2]
			return ls
		}, 1)
	})
	t.Run("time regression", func(t *testing.T) {
		// Swap two event lines: both checksums stay valid, but the
		// timeline runs backwards where the earlier event lands.
		ls := append([]string(nil), lines...)
		ls[2], ls[4] = ls[4], ls[2]
		got, st, err := trace.Decode(strings.NewReader(strings.Join(ls, "\n") + "\n"))
		if err != nil {
			t.Fatal(err)
		}
		// Events 0 and 3 still read in order; the displaced earlier
		// event is the regression that truncates the rest.
		want := []trace.Event{tr.Events[0], tr.Events[3]}
		if !reflect.DeepEqual(got.Events, want) {
			t.Errorf("loaded %d events, want the two in-order survivors", len(got.Events))
		}
		if st.CorruptEvents == 0 {
			t.Error("regression not counted")
		}
	})
	t.Run("truncation drops everything after", func(t *testing.T) {
		in := strings.Join(append(lines[:3], "garbage", lines[3]), "\n") + "\n"
		_, st, err := trace.Decode(strings.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		if st.Events != 2 || st.CorruptEvents != 2 {
			t.Errorf("stats = %+v, want 2 events and 2 corrupt lines", st)
		}
	})
}

func TestRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec, err := trace.NewRecorder(&buf, "captured", 7)
	if err != nil {
		t.Fatal(err)
	}
	evs := []trace.Event{
		{AtMs: 0, Phase: "warm", Request: cli.Request{Scenario: "redis-get90"}},
		{AtMs: 120, Phase: "warm", Request: cli.Request{Scenario: "redis-get50", Ops: 100}},
		{AtMs: 120, Phase: "shift", Request: cli.Request{Scenario: "redis-get90*2+redis-pipe8"}},
	}
	for _, ev := range evs {
		if err := rec.Record(ev.AtMs, ev.Phase, ev.Request); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Record(50, "late", cli.Request{}); err == nil {
		t.Fatal("recorder accepted a time regression")
	}
	if rec.Events() != 3 {
		t.Fatalf("Events() = %d", rec.Events())
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	got, st, err := trace.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil || st.CorruptEvents != 0 {
		t.Fatalf("decode recorded trace: %v (stats %+v)", err, st)
	}
	if got.Name != "captured" || got.Seed != 7 || len(got.Events) != 3 {
		t.Fatalf("decoded %q seed %d with %d events", got.Name, got.Seed, len(got.Events))
	}
	for i, ev := range got.Events {
		want := evs[i].Request
		want.Normalize()
		if ev.AtMs != evs[i].AtMs || ev.Phase != evs[i].Phase || !reflect.DeepEqual(ev.Request, want) {
			t.Errorf("event %d = %+v, want %+v", i, ev, evs[i])
		}
	}
}

func TestBuildSchedule(t *testing.T) {
	tr := smallTrace(t, 42)
	base := trace.BuildSchedule(tr, trace.ScheduleOpts{})
	if len(base) != len(tr.Events) {
		t.Fatalf("schedule has %d entries for %d events", len(base), len(tr.Events))
	}
	for i, s := range base {
		if s.Index != i || s.AtMs != tr.Events[i].AtMs {
			t.Fatalf("entry %d = %+v, want index %d at %dms", i, s, i, tr.Events[i].AtMs)
		}
	}
	fast := trace.BuildSchedule(tr, trace.ScheduleOpts{Speedup: 4})
	for i := range fast {
		if want := tr.Events[i].AtMs / 4; fast[i].AtMs != want {
			t.Fatalf("speedup 4: entry %d at %dms, want %dms", i, fast[i].AtMs, want)
		}
	}
	rated := trace.BuildSchedule(tr, trace.ScheduleOpts{Rate: 10})
	for i := range rated {
		if want := int64(i * 100); rated[i].AtMs != want {
			t.Fatalf("rate 10: entry %d at %dms, want %dms", i, rated[i].AtMs, want)
		}
	}
	cut := trace.BuildSchedule(tr, trace.ScheduleOpts{DurationMs: 3000})
	if len(cut) == 0 || len(cut) >= len(base) {
		t.Fatalf("duration cut kept %d of %d entries", len(cut), len(base))
	}
	for _, s := range cut {
		if s.AtMs > 3000 {
			t.Fatalf("entry past the duration cap: %+v", s)
		}
	}
	// The schedule is a pure function of (trace, opts): two builds
	// dump byte-identical sequences — the request-sequence half of the
	// determinism contract, with no server involved.
	var d1, d2 bytes.Buffer
	if err := trace.DumpSchedule(&d1, base); err != nil {
		t.Fatal(err)
	}
	if err := trace.DumpSchedule(&d2, trace.BuildSchedule(tr, trace.ScheduleOpts{})); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1.Bytes(), d2.Bytes()) {
		t.Fatal("schedule dump not byte-identical across builds")
	}
}

func TestFixtureDecodesClean(t *testing.T) {
	tr, st, err := trace.ReadFile(fixturePath)
	if err != nil {
		t.Fatalf("checked-in fixture: %v", err)
	}
	if st.CorruptEvents != 0 {
		t.Fatalf("checked-in fixture has %d corrupt events", st.CorruptEvents)
	}
	if tr.DurationMs() < 25000 || tr.DurationMs() > 30000 {
		t.Errorf("fixture spans %dms, want a ~30s trace", tr.DurationMs())
	}
	if len(tr.Phases()) < 2 {
		t.Errorf("fixture has %d phases, want a multi-phase schedule", len(tr.Phases()))
	}
}

// FuzzDecodeTrace asserts the codec's safety contract on arbitrary
// bytes: never panic, never return both a trace and a quarantine
// error, and anything that decodes re-encodes into a byte-stable
// canonical form that decodes to the same value.
func FuzzDecodeTrace(f *testing.F) {
	fixture, err := os.ReadFile(fixturePath)
	if err != nil {
		f.Fatalf("checked-in fixture must seed the corpus: %v", err)
	}
	f.Add(fixture)
	var buf bytes.Buffer
	tr, err := trace.Synthesize(trace.FlashSpec(3, 4000))
	if err != nil || tr.Encode(&buf) != nil {
		f.Fatalf("synthesize seed: %v", err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(fmt.Sprintf(`{"format":%q,"version":%d}`+"\n", trace.FormatName, trace.Version)))
	f.Add([]byte(`{"format":"flexos-trace","version":1}` + "\n" + `{"at_ms":5,"phase":"p","request":{"app":"redis"},"sum":"00000000"}` + "\n"))
	f.Add([]byte("\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, st, err := trace.Decode(bytes.NewReader(data))
		if err != nil {
			if tr != nil {
				t.Fatal("decode returned both a trace and an error")
			}
			return
		}
		if st.Events != len(tr.Events) {
			t.Fatalf("stats count %d != %d events", st.Events, len(tr.Events))
		}
		for i := 1; i < len(tr.Events); i++ {
			if tr.Events[i].AtMs < tr.Events[i-1].AtMs {
				t.Fatal("decoded events out of order")
			}
		}
		var enc bytes.Buffer
		if err := tr.Encode(&enc); err != nil {
			t.Fatalf("re-encode of a decoded trace failed: %v", err)
		}
		tr2, st2, err := trace.Decode(bytes.NewReader(enc.Bytes()))
		if err != nil || st2.CorruptEvents != 0 {
			t.Fatalf("canonical encoding failed to decode: %v (stats %+v)", err, st2)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatal("decode∘encode not the identity on decoded traces")
		}
	})
}
