package trace_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"flexos/internal/cli"
	"flexos/internal/serve"
	"flexos/internal/trace"
)

// TestReplayDeterministicAcrossConns is the determinism property of
// the issue: for a fixed (trace, seed, speedup), replay issues a
// byte-identical request sequence and collects identical exploration
// responses at any -conns. One daemon serves every replay — its memo
// only changes who computes, never what is answered.
func TestReplayDeterministicAcrossConns(t *testing.T) {
	srv, err := serve.New(serve.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	tr := smallTrace(t, 42)
	sched := trace.BuildSchedule(tr, trace.ScheduleOpts{Speedup: 1000})
	var reports []*trace.Report
	for _, conns := range []int{1, 3, 8} {
		client := &cli.Client{BaseURL: ts.URL, HTTPClient: ts.Client(), Retry: cli.DefaultRetry}
		rep, err := trace.Replay(context.Background(), tr.Name, sched, trace.ReplayOpts{
			Client: client, Conns: conns, ClosedLoop: true, Seed: tr.Seed,
		})
		if err != nil {
			t.Fatalf("conns=%d: %v", conns, err)
		}
		if rep.Failed != 0 {
			t.Fatalf("conns=%d: %d failed requests: %v", conns, rep.Failed, rep.Errors)
		}
		if rep.Issued != len(sched) || rep.Ok != len(sched) {
			t.Fatalf("conns=%d: issued %d ok %d, want %d", conns, rep.Issued, rep.Ok, len(sched))
		}
		if rep.Latency.Count != len(sched) || rep.Latency.P50 <= 0 || rep.Latency.P50 > rep.Latency.P99 {
			t.Fatalf("conns=%d: broken latency summary %+v", conns, rep.Latency)
		}
		if len(rep.Phases) != len(tr.Phases()) {
			t.Fatalf("conns=%d: %d phase reports for %d phases", conns, len(rep.Phases), len(tr.Phases()))
		}
		reports = append(reports, rep)
	}
	for _, rep := range reports[1:] {
		if rep.ResponseSum != reports[0].ResponseSum {
			t.Fatalf("response digest differs across conns: %s (conns=%d) vs %s (conns=%d)",
				reports[0].ResponseSum, reports[0].Conns, rep.ResponseSum, rep.Conns)
		}
	}

	// An open-loop replay of the same schedule agrees too: pacing
	// changes when requests go out, never what comes back.
	client := &cli.Client{BaseURL: ts.URL, HTTPClient: ts.Client(), Retry: cli.DefaultRetry}
	open, err := trace.Replay(context.Background(), tr.Name, sched, trace.ReplayOpts{
		Client: client, Conns: 2, Seed: tr.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if open.Mode != "open" || open.Failed != 0 || open.ResponseSum != reports[0].ResponseSum {
		t.Fatalf("open-loop replay diverged: mode=%s failed=%d sum=%s want %s",
			open.Mode, open.Failed, open.ResponseSum, reports[0].ResponseSum)
	}
}

// TestReplayCountsFailures points a replay at a dead endpoint and
// checks failures are counted, sampled and non-fatal.
func TestReplayCountsFailures(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler()) // 404 for every path
	defer ts.Close()
	tr := smallTrace(t, 9)
	sched := trace.BuildSchedule(tr, trace.ScheduleOpts{DurationMs: 2500})
	client := &cli.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
	rep, err := trace.Replay(context.Background(), tr.Name, sched, trace.ReplayOpts{
		Client: client, Conns: 2, ClosedLoop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != len(sched) || rep.Ok != 0 {
		t.Fatalf("failed=%d ok=%d, want all %d failed", rep.Failed, rep.Ok, len(sched))
	}
	if len(rep.Errors) == 0 {
		t.Fatal("no error samples")
	}
	for _, ph := range rep.Phases {
		if ph.Failed != ph.Requests {
			t.Fatalf("phase %s: failed=%d requests=%d", ph.Phase, ph.Failed, ph.Requests)
		}
	}
}
