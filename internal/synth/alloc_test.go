package synth

import (
	"context"
	"testing"

	"flexos/internal/explore"
)

// Allocation regression tests for the engine hot path. The contract the
// batch-dispatch engine introduced: the measurement loop performs no
// per-measurement heap allocation — no per-config goroutine, channel
// send payload, or boxed outcome — and the fixed per-config setup cost
// (canonical keys, comparison signatures, group membership) stays
// pinned. AllocsPerRun counts are meaningless under the race detector's
// instrumentation, so these tests skip there.

// allocBudgets pin whole-run allocations per configuration, with
// headroom over the measured ~27 (flat) / ~31 (DAG) so Go-version noise
// does not flap CI, but far below what reintroducing per-config channel
// dispatch or the space-wide allocating poset build would cost.
const (
	flatAllocsPerConfig = 35
	dagAllocsPerConfig  = 42
)

func skipIfRace(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under -race")
	}
}

// TestSynthMeasureZeroAllocs pins the metric model at exactly zero
// allocations per call — the property that makes it a usable anvil for
// engine allocation measurements.
func TestSynthMeasureZeroAllocs(t *testing.T) {
	skipIfRace(t)
	cfgs := Space(1, perApp)
	measure := Measure(1)
	for _, c := range []*explore.Config{cfgs[0], cfgs[len(cfgs)/2], cfgs[len(cfgs)-1]} {
		if allocs := testing.AllocsPerRun(200, func() {
			if _, err := measure(c); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Fatalf("Measure allocates %.1f times per call for %s, want 0", allocs, c.Key())
		}
	}
}

// TestEngineAllocsPerConfig pins the engine's total allocations per
// configuration in both dispatch modes. The pin covers everything —
// canonical keys, signatures, grouped posets, result slices — so it
// bounds setup churn too; the measurement loop's share is separately
// shown to be ~0 by TestMeasurementLoopAllocationFree.
func TestEngineAllocsPerConfig(t *testing.T) {
	skipIfRace(t)
	const n = 2000
	cfgs := Space(1, n)
	measure := Measure(1)
	engine := explore.Engine{}

	flat := explore.Request{Space: cfgs, Measure: measure, Workers: 1}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := engine.Run(context.Background(), flat); err != nil {
			t.Fatal(err)
		}
	})
	if per := allocs / n; per > flatAllocsPerConfig {
		t.Errorf("flat dispatch: %.2f allocs per config, budget %d", per, flatAllocsPerConfig)
	}

	dag := flat
	dag.Prune = true
	dag.Constraints = []explore.Constraint{explore.BudgetConstraint("throughput", MedianThroughput(1, cfgs))}
	allocs = testing.AllocsPerRun(3, func() {
		if _, err := engine.Run(context.Background(), dag); err != nil {
			t.Fatal(err)
		}
	})
	if per := allocs / n; per > dagAllocsPerConfig {
		t.Errorf("DAG dispatch: %.2f allocs per config, budget %d", per, dagAllocsPerConfig)
	}
}

// TestMeasurementLoopAllocationFree isolates the per-measurement share
// of the engine's allocations: a cold run (2000 fresh measurements) and
// a warm run over a populated memo (2000 memo hits, zero measurements)
// must allocate the same to within noise. Setup costs are identical in
// both, so any gap is per-measurement churn — the thing the batch
// dispatch exists to eliminate.
func TestMeasurementLoopAllocationFree(t *testing.T) {
	skipIfRace(t)
	const n = 2000
	cfgs := Space(1, n)
	measure := Measure(1)
	engine := explore.Engine{}

	cold := testing.AllocsPerRun(3, func() {
		if _, err := engine.Run(context.Background(), explore.Request{
			Space: cfgs, Measure: measure, Workers: 1,
		}); err != nil {
			t.Fatal(err)
		}
	})

	memo := explore.NewMemo()
	warmReq := explore.Request{Space: cfgs, Measure: measure, Workers: 1, Memo: memo, Workload: "w"}
	if _, err := engine.Run(context.Background(), warmReq); err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(3, func() {
		if _, err := engine.Run(context.Background(), warmReq); err != nil {
			t.Fatal(err)
		}
	})

	// The warm run pays one extra map-lookup path per config inside the
	// memo; allow 2 allocs/config of slack either way, far below the
	// one-goroutine-or-channel-send-per-config signature (≥ 3–5) this
	// test exists to catch.
	diff := cold - warm
	if diff < 0 {
		diff = -diff
	}
	if diff > 2*n {
		t.Errorf("cold run allocates %.0f, warm %.0f: measurement loop churns %.2f allocs per measurement",
			cold, warm, diff/n)
	}
}
