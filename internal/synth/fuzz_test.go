package synth

import (
	"testing"
)

// FuzzSpace drives the generator with arbitrary seeds and sizes and
// checks its three contracts: determinism (same inputs → byte-identical
// canonical keys), validity (dense IDs, non-empty blocks, unique
// components, known mechanisms), and prefix stability (Space(seed, m)
// is a prefix of Space(seed, n) for m < n).
func FuzzSpace(f *testing.F) {
	f.Add(int64(0), uint16(1))
	f.Add(int64(42), uint16(160))
	f.Add(int64(-1), uint16(500))
	f.Add(int64(1<<62), uint16(1000))
	f.Fuzz(func(t *testing.T, seed int64, n16 uint16) {
		n := int(n16)%1500 + 1
		cfgs := Space(seed, n)
		if len(cfgs) != n {
			t.Fatalf("Space(%d, %d) returned %d configs", seed, n, len(cfgs))
		}
		again := Space(seed, n)
		for i, c := range cfgs {
			if c.ID != i {
				t.Fatalf("ID at %d is %d, want dense", i, c.ID)
			}
			if k := c.Key(); k != again[i].Key() || k != cfgs[i].Key() {
				t.Fatalf("canonical key not stable at %d", i)
			}
			if len(c.Blocks) == 0 {
				t.Fatalf("config %d has no blocks", i)
			}
			seen := map[string]bool{}
			for _, blk := range c.Blocks {
				if len(blk) == 0 {
					t.Fatalf("config %d has an empty block", i)
				}
				for _, comp := range blk {
					if seen[comp] {
						t.Fatalf("config %d repeats component %q", i, comp)
					}
					seen[comp] = true
				}
			}
			switch c.Mechanism {
			case "intel-mpk", "vm-ept", "none":
			default:
				t.Fatalf("config %d has unexpected mechanism %q", i, c.Mechanism)
			}
		}
		if n > 1 {
			m := n/2 + 1
			prefix := Space(seed, m)
			for i := range prefix {
				if prefix[i].Key() != cfgs[i].Key() {
					t.Fatalf("Space(%d, %d) is not a prefix of Space(%d, %d) at %d", seed, m, seed, n, i)
				}
			}
		}
	})
}
