// Package synth generates deterministic pseudo-random configuration
// spaces — the benchmark anvil for exercising the exploration engine at
// 10k–1M points, two to four orders of magnitude beyond the paper's
// 80–320-point spaces. A synthetic space is structurally faithful to
// the real ones (CrossAppSpace): it is a union of per-application
// sub-spaces, each the cross product of compartmentalization
// strategies, per-component hardening masks and isolation mechanisms,
// with gate and sharing variants mixed in. Configurations of different
// applications are incomparable in the safety order (they share no
// components), which is exactly the group structure production
// cross-application spaces have — and what the engine's grouped poset
// construction exploits.
//
// Everything is a pure function of (seed, n): Space(seed, n) enumerates
// the same n configurations — same IDs, same canonical keys, same
// labels — on every run, platform and Go version, and Measure(seed) is
// a deterministic, allocation-free, safety-monotone metric model over
// those configurations. That determinism is what lets the oracle
// equivalence tests compare engine outputs byte for byte across worker
// counts, shards and cache states.
package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"flexos/internal/explore"
	"flexos/internal/harden"
	"flexos/internal/isolation"
)

// perApp is how many configurations one synthetic application
// contributes per isolation mechanism: the five canonical
// four-component partitions times the 16 per-component hardening
// masks, exactly the Fig6Space shape.
const perApp = 5 * 16

// Space generates a deterministic pseudo-random configuration space of
// exactly n points. The same (seed, n) pair always yields the same
// space; for m <= n, Space(seed, m) is a prefix of Space(seed, n).
// IDs are dense (0..n-1) and every configuration is valid: non-empty
// blocks, four uniquely named components per application, canonical
// mechanism names.
func Space(seed int64, n int) []*explore.Config {
	rng := rand.New(rand.NewSource(seed))
	cfgs := make([]*explore.Config, 0, n)
	for app := 0; len(cfgs) < n; app++ {
		appendApp(rng, app, n, &cfgs)
	}
	return cfgs
}

// appendApp emits one application's sub-space (up to the n cap): for
// each of the app's mechanisms, the five partitions × 16 hardening
// masks, with seeded gate/sharing choices. The rng is consumed
// identically whether or not the cap truncates the sub-space, which is
// what makes Space(seed, m) a prefix of Space(seed, n).
func appendApp(rng *rand.Rand, app, n int, cfgs *[]*explore.Config) {
	appName := fmt.Sprintf("s%03d.app", app)
	comps := [4]string{
		appName,
		fmt.Sprintf("s%03d.libc", app),
		fmt.Sprintf("s%03d.sched", app),
		fmt.Sprintf("s%03d.net", app),
	}
	// One to three mechanisms per app, always including intel-mpk so
	// every sub-space has the paper's default backend; extra mechanisms
	// deepen the safety poset (none < intel-mpk < vm-ept in strength).
	mechs := []string{"intel-mpk"}
	if rng.Intn(2) == 0 {
		mechs = append(mechs, "vm-ept")
	}
	if rng.Intn(4) == 0 {
		mechs = append(mechs, "none")
	}
	gate := isolation.GateFull
	if rng.Intn(3) == 0 {
		gate = isolation.GateLight
	}
	sharing := isolation.ShareDSS
	switch rng.Intn(4) {
	case 0:
		sharing = isolation.ShareStack
	case 1:
		sharing = isolation.ShareHeap
	}

	partitions := [][][]string{
		{{comps[0], comps[1], comps[2], comps[3]}},
		{{comps[0], comps[1], comps[2]}, {comps[3]}},
		{{comps[0], comps[1], comps[3]}, {comps[2]}},
		{{comps[0], comps[1]}, {comps[2], comps[3]}},
		{{comps[0], comps[1]}, {comps[2]}, {comps[3]}},
	}
	for _, mech := range mechs {
		for _, part := range partitions {
			for mask := 0; mask < 16; mask++ {
				if len(*cfgs) >= n {
					return
				}
				h := make(map[string]harden.Set, 4)
				for bit, comp := range comps {
					if mask&(1<<bit) != 0 {
						h[comp] = harden.NewSet(harden.All)
					}
				}
				*cfgs = append(*cfgs, &explore.Config{
					ID:        len(*cfgs),
					Blocks:    part,
					Hardening: h,
					Mechanism: mech,
					GateMode:  gate,
					Sharing:   sharing,
				})
			}
		}
	}
}

// Measure returns a deterministic metric model over synthetic (or any
// other) configurations: a pure function of the configuration's
// structure and the seed, allocation-free on every call, and monotone
// along the safety order — more compartments, more hardening, stronger
// mechanisms, fuller gates and tighter sharing all raise cost, so
// throughput falls and latency/memory/boot rise as configurations get
// safer, which is the §5 shape monotonic pruning relies on. Per-
// application jitter (a hash of the component names) spreads the
// groups apart without breaking within-group monotonicity.
func Measure(seed int64) explore.MeasureMetrics {
	rng := rand.New(rand.NewSource(seed))
	wComp := float64(rng.Intn(400) + 100)
	wStrength := float64(rng.Intn(600) + 200)
	wGate := float64(rng.Intn(120) + 30)
	wShare := float64(rng.Intn(120) + 30)
	wCFI := float64(rng.Intn(80) + 20)
	wKASan := float64(rng.Intn(200) + 100)
	wUBSan := float64(rng.Intn(120) + 40)
	wSP := float64(rng.Intn(40) + 10)
	return func(c *explore.Config) (explore.Metrics, error) {
		cost := 1000.0 + wComp*float64(len(c.Blocks)-1)
		switch c.Mechanism {
		case "intel-mpk", "mpk", "cheri":
			cost += wStrength
		case "vm-ept", "ept", "intel-sgx", "sgx":
			cost += 2 * wStrength
		}
		multi := len(c.Blocks) > 1
		if multi && c.GateMode != isolation.GateLight {
			cost += wGate
		}
		if multi && c.Sharing != isolation.ShareStack {
			cost += wShare
		}
		var jitter uint64 = 14695981039346656037
		for _, blk := range c.Blocks {
			for _, comp := range blk {
				// FNV-1a over the component name, XOR-combined across
				// components so the jitter is partition-independent —
				// identical for every configuration of one application,
				// which keeps the model monotone within each group.
				var h uint64 = 14695981039346656037
				for i := 0; i < len(comp); i++ {
					h ^= uint64(comp[i])
					h *= 1099511628211
				}
				jitter ^= h
				hs := c.Hardening[comp]
				if hs.Has(harden.CFI) {
					cost += wCFI
				}
				if hs.Has(harden.KASan) {
					cost += wKASan
				}
				if hs.Has(harden.UBSan) {
					cost += wUBSan
				}
				if hs.Has(harden.StackProtector) {
					cost += wSP
				}
			}
		}
		cost *= 1 + float64(jitter%1000)/4000
		mx := explore.Metrics{
			Throughput:   1e9 / cost,
			P50us:        cost / 100,
			P99us:        cost / 40,
			MaxUs:        cost / 10,
			PeakMemBytes: uint64(cost) * 1024,
			BootCycles:   uint64(cost) * 4096,
			Cycles:       uint64(cost) * 100_000,
			Ops:          100,
			Crossings:    uint64(len(c.Blocks)-1) * 1000,
		}
		return mx, nil
	}
}

// MedianThroughput returns the median modeled throughput of a space
// under Measure(seed) — a convenient floor for benchmarks and tests
// that want a budget pruning roughly half the space.
func MedianThroughput(seed int64, cfgs []*explore.Config) float64 {
	return QuantileThroughput(seed, cfgs, 0.5)
}

// QuantileThroughput returns the q-quantile (0 <= q <= 1) of a space's
// modeled throughput distribution under Measure(seed). High quantiles
// make tight monotone floors: a q=0.95 floor keeps roughly the top 5%
// of the space feasible, the regime where branch-and-bound pruning
// pays off most. It measures the space once (cheaply: the model is a
// few hundred ns per point).
func QuantileThroughput(seed int64, cfgs []*explore.Config, q float64) float64 {
	measure := Measure(seed)
	vals := make([]float64, len(cfgs))
	for i, c := range cfgs {
		mx, _ := measure(c)
		vals[i] = mx.Throughput
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	idx := int(q * float64(len(vals)))
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return vals[idx]
}
