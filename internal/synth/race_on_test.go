//go:build race

package synth

// raceEnabled reports whether the race detector instruments this build;
// allocation-count tests skip under it.
const raceEnabled = true
