package synth

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"flexos/internal/explore"
)

// The determinism matrix: a 10k-point synthetic space explored at every
// worker count, cold / warm / sharded, with and without pruning, must
// produce a report byte-identical to the sequential cold oracle. This
// is the engine's central contract — pool scheduling, memo state and
// shard decomposition may only move wall-clock time and the
// Evaluated/MemoHits accounting, never a measurement, a prune decision
// or the safest set.

const matrixSize = 10_000

// renderCore serializes the schedule-invariant portion of a result: the
// per-configuration measurements (key, perf, full vector, evaluated,
// pruned) and the safest set. Cached and the MemoHits/Evaluated
// counters are deliberately absent — they are exactly the fields a warm
// memo is allowed to move.
func renderCore(res *explore.Result) string {
	var b strings.Builder
	for i := range res.Measurements {
		m := &res.Measurements[i]
		fmt.Fprintf(&b, "%s perf=%.9g eval=%t pruned=%t mx=%+v\n",
			m.Config.Key(), m.Perf, m.Evaluated, m.Pruned, m.Metrics)
	}
	fmt.Fprintf(&b, "safest=")
	for _, i := range res.Safest {
		fmt.Fprintf(&b, " %s", res.Measurements[i].Config.Key())
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

// renderStrict additionally pins the cache provenance of every
// measurement — what cold runs at different worker counts must agree
// on.
func renderStrict(res *explore.Result) string {
	var b strings.Builder
	for i := range res.Measurements {
		fmt.Fprintf(&b, "cached=%t\n", res.Measurements[i].Cached)
	}
	fmt.Fprintf(&b, "evaluated=%d memohits=%d\n", res.Evaluated, res.MemoHits)
	return renderCore(res) + b.String()
}

func matrixWorkers() []int {
	ws := []int{1, 4, 8}
	gm := runtime.GOMAXPROCS(0)
	for _, w := range ws {
		if w == gm {
			return ws
		}
	}
	return append(ws, gm)
}

func TestEquivalenceMatrix10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-point matrix is a long test")
	}
	cfgs := Space(42, matrixSize)
	measure := Measure(42)
	budget := MedianThroughput(42, cfgs)
	engine := explore.Engine{}

	for _, prune := range []bool{false, true} {
		req := explore.Request{
			Space: cfgs, Measure: measure, Workers: 1, Prune: prune,
			Constraints: []explore.Constraint{explore.BudgetConstraint("throughput", budget)},
			Workload:    "synth42",
		}
		oracle, err := engine.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("prune=%t: oracle: %v", prune, err)
		}
		oracleCore := renderCore(oracle)
		oracleStrict := renderStrict(oracle)
		if prune && oracle.Evaluated == oracle.Total {
			t.Fatal("median budget pruned nothing; matrix would not exercise DAG dispatch")
		}

		// Cold runs at every worker count: byte-identical to the oracle
		// including cache provenance and accounting.
		for _, w := range matrixWorkers() {
			r := req
			r.Workers = w
			res, err := engine.Run(context.Background(), r)
			if err != nil {
				t.Fatalf("prune=%t workers=%d: %v", prune, w, err)
			}
			if renderStrict(res) != oracleStrict {
				t.Fatalf("prune=%t workers=%d: cold run diverges from sequential oracle", prune, w)
			}
		}

		// Warm runs: a memo populated by a full cold run must leave the
		// core report untouched at every worker count, with zero fresh
		// measurements.
		memo := explore.NewMemo()
		warmReq := req
		warmReq.Memo = memo
		if _, err := engine.Run(context.Background(), warmReq); err != nil {
			t.Fatalf("prune=%t: memo fill: %v", prune, err)
		}
		for _, w := range matrixWorkers() {
			r := warmReq
			r.Workers = w
			res, err := engine.Run(context.Background(), r)
			if err != nil {
				t.Fatalf("prune=%t workers=%d: warm: %v", prune, w, err)
			}
			if renderCore(res) != oracleCore {
				t.Fatalf("prune=%t workers=%d: warm run diverges from sequential oracle", prune, w)
			}
			if res.Evaluated != 0 {
				t.Fatalf("prune=%t workers=%d: warm run measured %d configurations fresh", prune, w, res.Evaluated)
			}
		}

		// Sharded runs: the concatenation of every shard's measurements
		// must reproduce the oracle's, for a parallel worker count.
		// (Pruning within a shard may measure configurations the
		// unsharded run pruned — a shard cannot see cross-shard
		// predecessors — so the sharded leg of the matrix runs without
		// pruning, where decisions are shard-local by construction.)
		if !prune {
			const shards = 4
			var parts []string
			for s := 0; s < shards; s++ {
				r := req
				r.Workers = 8
				r.Shard = explore.Shard{Index: s, Count: shards}
				res, err := engine.Run(context.Background(), r)
				if err != nil {
					t.Fatalf("shard %d/%d: %v", s, shards, err)
				}
				part := renderCore(res)
				parts = append(parts, part[:strings.Index(part, "safest=")])
			}
			oracleBody := oracleCore[:strings.Index(oracleCore, "safest=")]
			if strings.Join(parts, "") != oracleBody {
				t.Fatal("concatenated shard measurements diverge from sequential oracle")
			}
		}
	}
}
