package synth

import (
	"testing"

	"flexos/internal/explore"
)

// TestSpaceDeterministic: the same (seed, n) must yield the same space
// — same IDs, same canonical keys — on every call.
func TestSpaceDeterministic(t *testing.T) {
	a := Space(7, 3000)
	b := Space(7, 3000)
	if len(a) != 3000 || len(b) != 3000 {
		t.Fatalf("sizes %d, %d; want 3000", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != i || b[i].ID != i {
			t.Fatalf("IDs not dense at %d: %d, %d", i, a[i].ID, b[i].ID)
		}
		if a[i].Key() != b[i].Key() {
			t.Fatalf("key diverges at %d:\n%s\n%s", i, a[i].Key(), b[i].Key())
		}
	}
}

// TestSpacePrefixStable: Space(seed, m) is a prefix of Space(seed, n)
// for m <= n — what makes a shard of a small space meaningful in a
// memo shared with a larger one.
func TestSpacePrefixStable(t *testing.T) {
	big := Space(11, 2500)
	for _, m := range []int{1, 79, perApp, perApp + 1, 1200, 2500} {
		small := Space(11, m)
		if len(small) != m {
			t.Fatalf("Space(11, %d) has %d points", m, len(small))
		}
		for i := range small {
			if small[i].Key() != big[i].Key() {
				t.Fatalf("prefix property broken at n=%d i=%d", m, i)
			}
		}
	}
}

// TestSpaceValid: every generated configuration is structurally valid —
// non-empty blocks, unique components, canonical mechanism names — and
// distinct seeds yield distinct spaces.
func TestSpaceValid(t *testing.T) {
	cfgs := Space(3, 2000)
	for i, c := range cfgs {
		if len(c.Blocks) == 0 {
			t.Fatalf("config %d has no blocks", i)
		}
		seen := map[string]bool{}
		for _, blk := range c.Blocks {
			if len(blk) == 0 {
				t.Fatalf("config %d has an empty block", i)
			}
			for _, comp := range blk {
				if seen[comp] {
					t.Fatalf("config %d repeats component %s", i, comp)
				}
				seen[comp] = true
			}
		}
		switch c.Mechanism {
		case "intel-mpk", "vm-ept", "none":
		default:
			t.Fatalf("config %d has unexpected mechanism %q", i, c.Mechanism)
		}
	}
	other := Space(4, 2000)
	same := 0
	for i := range cfgs {
		if cfgs[i].Key() == other[i].Key() {
			same++
		}
	}
	if same == len(cfgs) {
		t.Fatal("seeds 3 and 4 generated identical spaces")
	}
}

// TestSpaceOrderSound runs the safety-order validator over one
// application group of a synthetic space: reflexive, antisymmetric up
// to key identity, transitive.
func TestSpaceOrderSound(t *testing.T) {
	cfgs := Space(5, perApp)
	p := explore.Poset(cfgs)
	if err := p.CheckOrder(); err != nil {
		t.Fatal(err)
	}
}

// TestMeasureDeterministicAndMonotone: the metric model is a pure
// function of (seed, config) and is safety-monotone — whenever a ≤ b
// in the safety order, b costs at least as much (throughput no higher,
// latency no lower).
func TestMeasureDeterministicAndMonotone(t *testing.T) {
	cfgs := Space(9, 2*perApp)
	m1, m2 := Measure(9), Measure(9)
	for _, c := range cfgs {
		a, err := m1(c)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := m2(c)
		if a != b {
			t.Fatalf("measure not deterministic for %s", c.Key())
		}
	}
	p := explore.Poset(cfgs)
	mxs := make([]explore.Metrics, len(cfgs))
	for i, c := range cfgs {
		mxs[i], _ = m1(c)
	}
	for i := range cfgs {
		for j := range cfgs {
			if i != j && p.Leq(i, j) {
				if mxs[i].Throughput < mxs[j].Throughput {
					t.Fatalf("model not monotone: %d ≤ %d but throughput %v < %v",
						i, j, mxs[i].Throughput, mxs[j].Throughput)
				}
				if mxs[i].P99us > mxs[j].P99us {
					t.Fatalf("model not monotone: %d ≤ %d but p99 %v > %v",
						i, j, mxs[i].P99us, mxs[j].P99us)
				}
			}
		}
	}
}

// TestMedianThroughputSplitsSpace: the budget helper lands inside the
// modeled range so a budget at the median actually prunes part of the
// space and keeps part feasible.
func TestMedianThroughputSplitsSpace(t *testing.T) {
	cfgs := Space(42, 2000)
	med := MedianThroughput(42, cfgs)
	measure := Measure(42)
	above, below := 0, 0
	for _, c := range cfgs {
		mx, _ := measure(c)
		if mx.Throughput >= med {
			above++
		} else {
			below++
		}
	}
	if above == 0 || below == 0 {
		t.Fatalf("median budget does not split the space: %d above, %d below", above, below)
	}
}
