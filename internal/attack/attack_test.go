package attack_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"flexos/internal/attack"
	"flexos/internal/explore"
	"flexos/internal/explore/exploretest"
	"flexos/internal/isolation"
	"flexos/internal/scenario"
)

// The adversarial oracle suite of the attack subsystem: survival must
// be monotone along the extended safety order on both random
// attack-axis spaces and the real expanded Fig6 spaces, a pure
// function of canonical configuration identity, and — when driven
// through the exploration engine — byte-identical to the brute-force
// reference at every worker count.

var fig6Quad = [4]string{"libredis", "newlib", "uksched", "lwip"}

// spaces returns the corpus the oracle sweeps: random attack-axis
// spaces plus the real rop-expanded Fig6 space on both machine
// profiles.
func spaces(t *testing.T) map[string][]*explore.Config {
	t.Helper()
	out := map[string][]*explore.Config{}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		out["random-"+string(rune('a'+seed))] = exploretest.RandomAttackSpace(rng, 50)
	}
	base := explore.Fig6Space(fig6Quad)
	out["fig6-x86"] = attack.Space(base, attack.Spec{Scenario: "combined"})
	out["fig6-riscv"] = attack.Space(base, attack.Spec{Scenario: "combined", Profile: "riscv"})
	return out
}

// TestSurvivalMonotoneAlongLeq is the dominance oracle: for every
// comparable pair a <= b of every corpus space and every shipped
// scenario, Survival(a) <= Survival(b). This is the property that
// makes "safest surviving configuration" a meaningful query — and the
// reason survival floors may filter but never prune.
func TestSurvivalMonotoneAlongLeq(t *testing.T) {
	for name, cfgs := range spaces(t) {
		p := explore.Poset(cfgs)
		for _, sc := range attack.All() {
			surv := make([]float64, len(cfgs))
			for i, c := range cfgs {
				surv[i] = sc.Survival(c)
				if surv[i] <= 0 || surv[i] > 1 {
					t.Fatalf("%s/%s: config %d survival %v outside (0,1]", name, sc.Name(), i, surv[i])
				}
			}
			for i := range cfgs {
				for j := range cfgs {
					if i != j && p.Leq(i, j) && surv[i] > surv[j] {
						t.Fatalf("%s/%s: %s <= %s but survival %v > %v",
							name, sc.Name(), cfgs[i].Label(), cfgs[j].Label(), surv[i], surv[j])
					}
				}
			}
		}
	}
}

// TestSurvivalIsFunctionOfKey pins determinism: configurations with
// equal canonical keys score bit-equal survival, and rescoring is
// stable call over call.
func TestSurvivalIsFunctionOfKey(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfgs := exploretest.RandomAttackSpace(rng, 120)
	for _, sc := range attack.All() {
		byKey := map[string]float64{}
		for _, c := range cfgs {
			s := sc.Survival(c)
			if s2 := sc.Survival(c); s2 != s {
				t.Fatalf("%s: unstable survival for %s: %v then %v", sc.Name(), c.Label(), s, s2)
			}
			if prev, ok := byKey[c.Key()]; ok && prev != s {
				t.Fatalf("%s: key %q scored %v and %v", sc.Name(), c.Key(), prev, s)
			}
			byKey[c.Key()] = s
		}
	}
}

// TestAttackSpaceExpansion pins the expansion geometry: an unpinned
// spec crosses the base with 3 ASLR rungs x 4 control-flow variants, a
// pinned spec only with the variants, and the expansion is
// deterministic — two calls yield identical canonical key sequences.
func TestAttackSpaceExpansion(t *testing.T) {
	base := explore.Fig6Space(fig6Quad)
	spec := attack.Spec{Scenario: "rop-chain", Profile: "riscv"}
	sp := attack.Space(base, spec)
	if want := len(base) * 12; len(sp) != want {
		t.Fatalf("unpinned expansion: %d configs, want %d", len(sp), want)
	}
	pinned := attack.Space(base, attack.Spec{
		Scenario: "rop-chain", ASLR: isolation.ASLR{EntropyBits: 16}, PinASLR: true,
	})
	if want := len(base) * 4; len(pinned) != want {
		t.Fatalf("pinned expansion: %d configs, want %d", len(pinned), want)
	}
	again := attack.Space(base, spec)
	for i := range sp {
		if sp[i].ID != i {
			t.Fatalf("config %d carries ID %d; want sequential renumbering", i, sp[i].ID)
		}
		if sp[i].Key() != again[i].Key() {
			t.Fatalf("expansion nondeterministic at %d:\n%s\n%s", i, sp[i].Key(), again[i].Key())
		}
		if sp[i].Profile != "riscv" {
			t.Fatalf("config %d lost the riscv profile", i)
		}
	}
	// Stamping never expands; it only pins the profile / ASLR axes.
	st := attack.Stamp(base, "riscv", isolation.ASLR{EntropyBits: 16, LeakResistant: true}, true)
	if len(st) != len(base) {
		t.Fatalf("Stamp changed the space size: %d -> %d", len(base), len(st))
	}
	for i, c := range st {
		if c.Profile != "riscv" || c.ASLR != (isolation.ASLR{EntropyBits: 16, LeakResistant: true}) {
			t.Fatalf("Stamp missed config %d: profile=%q aslr=%s", i, c.Profile, c.ASLR.String())
		}
		if base[i].Profile != "" || base[i].ASLR.Enabled() {
			t.Fatalf("Stamp mutated the base space at %d", i)
		}
	}
}

// TestAttackEngineMatchesOracleAtEveryWorkerCount drives the real
// expanded Fig6 space, scored by attack.Measure, through the pruned
// engine under a throughput floor plus a survival floor, and
// byte-compares against the brute-force reference at workers 1, 4
// and 8 — the grouped safety order over the attack dimensions must
// reproduce the oracle's dominance decisions exactly.
func TestAttackEngineMatchesOracleAtEveryWorkerCount(t *testing.T) {
	base := explore.Fig6Space(fig6Quad)
	for _, sc := range attack.All() {
		cfgs := attack.Space(base, attack.Spec{Scenario: sc.Name(), Profile: "riscv"})
		rng := rand.New(rand.NewSource(7))
		measure := attack.Measure(sc, exploretest.VectorMeasure(rng))

		oracle, err := explore.Engine{}.Run(context.Background(), explore.Request{
			Space: exploretest.CopySpace(cfgs), Measure: measure, Workers: 4,
		})
		if err != nil {
			t.Fatalf("%s: oracle: %v", sc.Name(), err)
		}
		cs := []explore.Constraint{
			throughputFloor(oracle, 0.5),
			exploretest.SurvivalFloor(rng, oracle),
		}
		want := exploretest.Reference(exploretest.CopySpace(cfgs), measure,
			scenario.MetricSurvival, cs, true).Render()
		for _, workers := range []int{1, 4, 8} {
			res, err := explore.Engine{}.Run(context.Background(), explore.Request{
				Space:       exploretest.CopySpace(cfgs),
				Measure:     measure,
				Metric:      scenario.MetricSurvival,
				Constraints: cs,
				Workers:     workers,
				Prune:       true,
			})
			if err != nil && !errors.Is(err, explore.ErrNoFeasible) {
				t.Fatalf("%s workers %d: %v", sc.Name(), workers, err)
			}
			if got := exploretest.RenderResult(res); got != want {
				t.Fatalf("%s: workers=%d diverges from oracle", sc.Name(), workers)
			}
		}
	}
}

// throughputFloor mirrors the explore-side helper: a monotone floor at
// the q-quantile of the measured throughput distribution.
func throughputFloor(res *explore.Result, q float64) explore.Constraint {
	vals := make([]float64, 0, len(res.Measurements))
	for _, m := range res.Measurements {
		vals = append(vals, m.Metrics.Throughput)
	}
	c := explore.BudgetConstraint("", vals[0])
	sorted := append([]float64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	c.Bound = sorted[int(q*float64(len(sorted)-1))]
	return c
}

// TestNamespaceSeparatesAttackRuns pins the memo-identity contract:
// attack-scored runs rescore every vector, so their namespace must
// never collide with the plain run's or another scenario's.
func TestNamespaceSeparatesAttackRuns(t *testing.T) {
	rop, _ := attack.ByName("rop-chain")
	leak, _ := attack.ByName("comp-leak")
	w := "redis-get90/240"
	if attack.Namespace(rop, w) == w {
		t.Fatal("attack namespace must differ from the workload's")
	}
	if attack.Namespace(rop, w) == attack.Namespace(leak, w) {
		t.Fatal("distinct scenarios must occupy distinct namespaces")
	}
}
