package attack

import (
	"fmt"
	"strings"

	"flexos/internal/explore"
	"flexos/internal/harden"
	"flexos/internal/isolation"
	"flexos/internal/machine"
)

// Spec is a parsed attack-axis configuration: which attacker to score
// against, which machine profile to build for, and — optionally — a
// pinned ASLR level. When no level is pinned, Space sweeps the Ladder.
type Spec struct {
	// Scenario is the canonical attack scenario name.
	Scenario string
	// Profile is the canonical machine profile ("" = default x86).
	Profile string
	// ASLR is the pinned randomization level; meaningful only when
	// PinASLR is set.
	ASLR isolation.ASLR
	// PinASLR pins every configuration to ASLR instead of sweeping.
	PinASLR bool
}

// String renders the spec in its canonical configuration syntax:
// "scenario", "scenario@profile", "scenario;aslr=16+leak" or the
// combination. ParseConfig is its inverse, and parsing a canonical
// rendering is the identity — the key-stability property the fuzz
// harness pins.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Scenario)
	if s.Profile != "" {
		b.WriteString("@")
		b.WriteString(s.Profile)
	}
	if s.PinASLR {
		b.WriteString(";aslr=")
		b.WriteString(s.ASLR.String())
	}
	return b.String()
}

// ParseConfig parses the attack-axis configuration syntax:
//
//	scenario[@profile][;aslr=off|N|N+leak]
//
// e.g. "rop-chain", "addr-probe@riscv", "combined@riscv;aslr=16+leak".
// Scenario and profile names canonicalize (so "combined@x86" and
// "combined" yield identical specs); malformed input returns an error,
// never a panic.
func ParseConfig(in string) (Spec, error) {
	var spec Spec
	rest := strings.TrimSpace(in)
	if rest == "" {
		return Spec{}, fmt.Errorf("attack: empty attack spec")
	}
	head, opts, hasOpts := strings.Cut(rest, ";")
	name, prof, hasProf := strings.Cut(head, "@")
	sc, ok := ByName(name)
	if !ok {
		return Spec{}, fmt.Errorf("attack: unknown attack scenario %q (want %s)", name, Names())
	}
	spec.Scenario = sc.Name()
	if hasProf {
		canon, err := machine.CanonicalProfile(prof)
		if err != nil {
			return Spec{}, fmt.Errorf("attack: spec %q: %w", in, err)
		}
		spec.Profile = canon
	}
	if hasOpts {
		for _, opt := range strings.Split(opts, ";") {
			k, v, hasV := strings.Cut(opt, "=")
			if strings.TrimSpace(k) != "aslr" || !hasV || strings.TrimSpace(v) == "" {
				return Spec{}, fmt.Errorf("attack: spec %q: unknown option %q (only \"aslr=off|N|N+leak\" is accepted)", in, opt)
			}
			a, err := isolation.ParseASLR(v)
			if err != nil {
				return Spec{}, fmt.Errorf("attack: spec %q: %w", in, err)
			}
			spec.ASLR = a
			spec.PinASLR = true
		}
	}
	return spec, nil
}

// Ladder is the ASLR sweep attack spaces expand over when the spec pins
// no level: off, 16 bits of plain entropy, and 16 leak-resistant bits
// (the Oreo point — same entropy, probing-proof).
var Ladder = []isolation.ASLR{
	{},
	{EntropyBits: 16},
	{EntropyBits: 16, LeakResistant: true},
}

// controlFlowVariants are the uniform hardening additions the attack
// space crosses with the base space: nothing, forward-edge CFI, a
// shadow stack, and both. Together with the ASLR ladder this gives the
// poset genuinely new safety dimensions to order (CFI ⊂ CFI+SS, off ≤
// 16 ≤ 16+leak) rather than just rescoring old points.
var controlFlowVariants = []harden.Set{
	harden.NewSet(),
	harden.NewSet(harden.CFI),
	harden.NewSet(harden.ShadowStack),
	harden.NewSet(harden.CFI, harden.ShadowStack),
}

// Stamp returns a copy of the space with every configuration pinned to
// the given machine profile and — when pin is set — the given ASLR
// level, without expanding it. It is the non-attack path of the
// -profile / -aslr front-end flags: the stamped keys (and with them the
// memo and canonical request keys) separate from the unstamped run's.
func Stamp(base []*explore.Config, profile string, a isolation.ASLR, pin bool) []*explore.Config {
	out := make([]*explore.Config, len(base))
	for i, c := range base {
		n := *c
		n.Profile = profile
		if pin {
			n.ASLR = a
		}
		out[i] = &n
	}
	return out
}

// Space expands a base configuration space along the attack axes: every
// base point is stamped with the spec's machine profile and crossed
// with the ASLR ladder (or pinned level) and the control-flow hardening
// variants. IDs are renumbered sequentially; expansion order is
// deterministic (base order, then ladder, then variant), so the
// resulting space — and every report over it — is byte-stable.
func Space(base []*explore.Config, spec Spec) []*explore.Config {
	ladder := Ladder
	if spec.PinASLR {
		ladder = []isolation.ASLR{spec.ASLR}
	}
	out := make([]*explore.Config, 0, len(base)*len(ladder)*len(controlFlowVariants))
	for _, c := range base {
		for _, a := range ladder {
			for _, extra := range controlFlowVariants {
				n := *c
				n.ID = len(out)
				n.Profile = spec.Profile
				n.ASLR = a
				if !extra.Empty() {
					hs := make(map[string]harden.Set, len(c.Hardening))
					for k, v := range c.Hardening {
						hs[k] = v
					}
					for _, comp := range c.Components() {
						hs[comp] = hs[comp].Union(extra)
					}
					n.Hardening = hs
				}
				out = append(out, &n)
			}
		}
	}
	return out
}
