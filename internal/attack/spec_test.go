package attack_test

import (
	"strings"
	"testing"

	"flexos/internal/attack"
	"flexos/internal/isolation"
)

// TestParseConfig pins the attack-spec syntax: canonicalization of
// scenario, profile and ASLR aliases, the String/ParseConfig fixpoint,
// and rejection (never panic) of malformed input.
func TestParseConfig(t *testing.T) {
	valid := []struct {
		in   string
		want attack.Spec
	}{
		{"rop-chain", attack.Spec{Scenario: "rop-chain"}},
		{"  ROP-Chain  ", attack.Spec{Scenario: "rop-chain"}},
		{"combined@x86", attack.Spec{Scenario: "combined"}},
		{"combined@xeon", attack.Spec{Scenario: "combined"}},
		{"addr-probe@risc-v", attack.Spec{Scenario: "addr-probe", Profile: "riscv"}},
		{"addr-probe@rv64", attack.Spec{Scenario: "addr-probe", Profile: "riscv"}},
		{"comp-leak;aslr=off", attack.Spec{Scenario: "comp-leak", PinASLR: true}},
		{"comp-leak;aslr=none", attack.Spec{Scenario: "comp-leak", PinASLR: true}},
		{"combined@riscv;aslr=16+leak", attack.Spec{
			Scenario: "combined", Profile: "riscv",
			ASLR: isolation.ASLR{EntropyBits: 16, LeakResistant: true}, PinASLR: true,
		}},
	}
	for _, tc := range valid {
		got, err := attack.ParseConfig(tc.in)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("ParseConfig(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// Canonical renderings are parse fixpoints.
		again, err := attack.ParseConfig(got.String())
		if err != nil || again != got {
			t.Fatalf("ParseConfig(%q).String() = %q does not re-parse to itself: %+v, %v",
				tc.in, got.String(), again, err)
		}
	}
	for _, in := range []string{
		"", "   ", "ransomware", "rop-chain@z80", "rop-chain;entropy=16",
		"rop-chain;aslr", "rop-chain;aslr=", "rop-chain;aslr=41",
		"rop-chain;aslr=-1", "rop-chain;aslr=0+leak", "rop-chain;aslr=16+leak+leak",
		"@riscv", ";aslr=16", "combined@riscv;aslr=16;aslr=8",
	} {
		if spec, err := attack.ParseConfig(in); err == nil {
			// Duplicate options are allowed to last-write; everything else
			// above must fail.
			if in != "combined@riscv;aslr=16;aslr=8" {
				t.Fatalf("ParseConfig(%q) accepted as %+v; want error", in, spec)
			}
		}
	}
}

// FuzzParseAttackConfig fuzzes the attack-spec parser: malformed specs
// must error (never panic or hang), and every accepted spec must
// canonicalize — its String rendering re-parses, bit-identically, to
// the same Spec, so attack-axis canonical request keys are stable.
func FuzzParseAttackConfig(f *testing.F) {
	for _, s := range []string{
		"rop-chain", "addr-probe", "comp-leak", "combined",
		"combined@riscv", "combined@x86", "rop-chain@risc-v",
		"rop-chain;aslr=off", "rop-chain;aslr=16", "combined@riscv;aslr=16+leak",
		"ROP-CHAIN@RV64;aslr=32+leak",
		"", "@", ";", "a@b;c=d", "combined@", "combined;aslr=",
		"combined;aslr=+leak", "combined;;aslr=16", "combined@riscv;aslr=16;aslr=8",
		"combined\x00@riscv", "combined@ünïcödé",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := attack.ParseConfig(input)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if spec.Scenario == "" {
			t.Fatalf("ParseConfig(%q) accepted a spec with no scenario: %+v", input, spec)
		}
		if _, ok := attack.ByName(spec.Scenario); !ok {
			t.Fatalf("ParseConfig(%q) produced unknown scenario %q", input, spec.Scenario)
		}
		if strings.ToLower(spec.Profile) != spec.Profile {
			t.Fatalf("ParseConfig(%q) produced non-canonical profile %q", input, spec.Profile)
		}
		rendered := spec.String()
		again, err := attack.ParseConfig(rendered)
		if err != nil {
			t.Fatalf("re-parsing canonical rendering %q failed: %v\ninput: %q", rendered, err, input)
		}
		if again != spec {
			t.Fatalf("canonical rendering is not a fixpoint: %+v -> %q -> %+v\ninput: %q",
				spec, rendered, again, input)
		}
	})
}
