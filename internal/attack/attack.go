// Package attack scores FlexOS configurations by their probability of
// surviving named attack classes, turning the safety axis of the Pareto
// front from an ordinal level into survival against concrete threats.
//
// Three attack workloads are modeled, following the threats PAPERS.md
// names: ROP-chain construction (gadget supply scales with compartment
// size and the machine profile's gadget density — compressed-ISA RISC-V
// decodes far more unintended gadgets), address probing (Oreo's threat
// model: ASLR entropy collapses under microarchitectural probing unless
// the layout is leak-resistant), and cross-compartment data leak
// (defeated primarily by mechanism strength and data-isolation policy).
// A fourth scenario, "combined", requires surviving all three.
//
// The scoring model is analytical and deterministic — see DESIGN §12.
// Every factor is a plain IEEE 754 product, composed in a fixed order,
// with powers of two computed exactly via math.Ldexp; no transcendental
// functions, no map iteration, no randomness. Two properties are load-
// bearing and property-tested against a brute-force oracle:
//
//   - Determinism: Survival(c) is a pure function of Config identity
//     (equal Config.Key ⇒ bit-equal survival) on every platform.
//   - Monotonicity: Survival is non-decreasing along the safety order —
//     if explore.Leq(a, b), then Survival(a) <= Survival(b). Each factor
//     is monotone in exactly the dimension Leq orders, so safer
//     configurations never score worse.
package attack

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"flexos/internal/explore"
	"flexos/internal/harden"
	"flexos/internal/isolation"
	"flexos/internal/machine"
	"flexos/internal/scenario"
)

// Scenario is one attack workload: a parameterized attacker whose
// per-component success probability the survival score inverts.
type Scenario struct {
	name string
	desc string

	// probing marks attackers with microarchitectural probing
	// capability (Oreo's model): non-leak-resistant ASLR loses half its
	// entropy bits to them before the attack proper starts.
	probing bool

	// log2Attempts is the attacker's guess budget against layout
	// randomization, as a power of two: the chance of landing a guess
	// is min(1, 2^(log2Attempts - effectiveBits)) — exact in binary
	// floating point.
	log2Attempts int

	// base is the attacker's success probability against a completely
	// undefended single compartment. Strictly below 1, so survival is
	// always positive.
	base float64

	// mitigation maps each hardening technique to the factor it applies
	// to the success probability (1 = no effect). Composed in allTechs
	// order.
	mitigation [len(allTechs)]float64

	// mech is the success factor per isolation.Strength (None,
	// IntraAS, InterAS); non-increasing.
	mech [3]float64

	// share and gate apply when the configuration's data-sharing /
	// gate-flavor rank is 1 (the safer rank); both <= 1.
	share, gate float64

	// gadgets scales the attack surface by the machine profile's
	// gadget density (ROP cares; probing and leaking do not).
	gadgets bool

	// parts, for composite scenarios, are the sub-scenarios whose
	// survivals multiply (surviving the combined attacker means
	// surviving every part).
	parts []*Scenario
}

// Name identifies the scenario ("rop-chain", ...).
func (s *Scenario) Name() string { return s.name }

// Description is the one-line human summary.
func (s *Scenario) Description() string { return s.desc }

// allTechs fixes the mitigation composition order. Floating-point
// products are order-sensitive; this order is part of the determinism
// contract.
var allTechs = [...]harden.Tech{harden.CFI, harden.KASan, harden.UBSan, harden.StackProtector, harden.ShadowStack}

// The shipped attack library.
var (
	ropChain = &Scenario{
		name:         "rop-chain",
		desc:         "construct a ROP chain from the victim compartment's gadget supply",
		probing:      false,
		log2Attempts: 10,
		base:         0.95,
		mitigation:   [...]float64{0.25, 0.95, 1.0, 0.85, 0.30}, // cfi, kasan, ubsan, sp, shadowstack
		mech:         [...]float64{1.0, 0.6, 0.35},
		share:        0.80,
		gate:         0.85,
		gadgets:      true,
	}
	addrProbe = &Scenario{
		name:         "addr-probe",
		desc:         "derandomize the layout by microarchitectural address probing",
		probing:      true,
		log2Attempts: 16,
		base:         0.90,
		mitigation:   [...]float64{0.95, 0.50, 0.90, 1.0, 0.95},
		mech:         [...]float64{1.0, 0.7, 0.45},
		share:        0.85,
		gate:         0.90,
	}
	compLeak = &Scenario{
		name:         "comp-leak",
		desc:         "exfiltrate another compartment's data through shared state",
		probing:      true,
		log2Attempts: 8,
		base:         0.85,
		mitigation:   [...]float64{0.90, 0.70, 0.85, 0.95, 0.90},
		mech:         [...]float64{1.0, 0.5, 0.25},
		share:        0.70,
		gate:         0.80,
	}
	combined = &Scenario{
		name:  "combined",
		desc:  "survive rop-chain, addr-probe and comp-leak simultaneously",
		parts: []*Scenario{ropChain, addrProbe, compLeak},
	}
)

var registry = map[string]*Scenario{
	ropChain.name:  ropChain,
	addrProbe.name: addrProbe,
	compLeak.name:  compLeak,
	combined.name:  combined,
}

// ByName resolves an attack scenario identifier.
func ByName(name string) (*Scenario, bool) {
	s, ok := registry[strings.ToLower(strings.TrimSpace(name))]
	return s, ok
}

// All returns the shipped attack library, sorted by name.
func All() []*Scenario {
	out := make([]*Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Names lists the scenario names for error messages and help text.
func Names() string {
	var out []string
	for _, s := range All() {
		out = append(out, s.name)
	}
	return strings.Join(out, "|")
}

// round6 quantizes a survival probability to six decimals — the report
// rendering granularity — with the exact-multiplication rounding the
// determinism contract allows. It is monotone, so quantization never
// reorders two survivals.
func round6(x float64) float64 { return math.Round(x*1e6) / 1e6 }

// Survival returns the configuration's probability of surviving this
// attack scenario, in (0,1]. The score is the weakest-link inversion of
// the per-component attack success: an image falls if any of its
// components falls.
func (s *Scenario) Survival(c *explore.Config) float64 {
	if len(s.parts) > 0 {
		p := 1.0
		for _, part := range s.parts {
			p *= part.survivalRaw(c)
		}
		return round6(p)
	}
	return round6(s.survivalRaw(c))
}

// survivalRaw is Survival before quantization, so composite scenarios
// multiply unrounded parts.
func (s *Scenario) survivalRaw(c *explore.Config) float64 {
	comps := c.Components()
	if len(comps) == 0 {
		return 1
	}
	density := 1.0
	if s.gadgets && c.Profile != "" {
		if p, err := machine.ParseProfile(c.Profile); err == nil {
			density = p.GadgetDensity
		}
	}
	// Shared per-image factors: mechanism strength, data-sharing and
	// gate ranks (rank 1 is the safer one and earns the <1 factor),
	// and the attacker's chance against layout randomization.
	img := s.mech[strengthIndex(c)]
	if sharingRank(c) == 1 {
		img *= s.share
	}
	if gateRank(c) == 1 {
		img *= s.gate
	}
	aslr := math.Ldexp(1, s.log2Attempts-c.ASLR.EffectiveBits(s.probing))
	if aslr > 1 {
		aslr = 1
	}
	img *= aslr

	total := float64(len(comps))
	worst := 0.0
	for _, comp := range comps {
		// Surface: the fraction of the image reachable inside the
		// component's compartment — partition refinement shrinks it —
		// scaled by the profile's gadget supply for ROP attackers.
		surface := float64(blockSize(c, comp)) / total * density
		if surface > 1 {
			surface = 1
		}
		succ := s.base * surface * img
		hs := c.Hardening[comp]
		for i, t := range allTechs {
			if hs.Has(t) {
				succ *= s.mitigation[i]
			}
		}
		if succ > worst {
			worst = succ
		}
	}
	if worst > 1 {
		worst = 1
	}
	return 1 - worst
}

// blockSize returns the number of components sharing comp's block (1
// when the component is unknown, which cannot happen for generated
// spaces).
func blockSize(c *explore.Config, comp string) int {
	for _, blk := range c.Blocks {
		for _, x := range blk {
			if x == comp {
				return len(blk)
			}
		}
	}
	return 1
}

// strengthIndex, sharingRank and gateRank mirror the unexported rank
// helpers of internal/explore through its public Leq semantics: they
// must order exactly like the safety poset's dimensions, which the
// oracle property suite checks.
func strengthIndex(c *explore.Config) int {
	switch explore.CanonicalMechanism(c.Mechanism) {
	case "intel-mpk", "cheri":
		return int(isolation.StrengthIntraAS)
	case "vm-ept", "intel-sgx":
		return int(isolation.StrengthInterAS)
	default:
		return int(isolation.StrengthNone)
	}
}

func sharingRank(c *explore.Config) int {
	if c.NumCompartments() == 1 || c.Sharing != isolation.ShareStack {
		return 1
	}
	return 0
}

func gateRank(c *explore.Config) int {
	if c.NumCompartments() == 1 || c.GateMode != isolation.GateLight {
		return 1
	}
	return 0
}

// Measure wraps a base measure function so every vector carries the
// scenario's survival score alongside its performance metrics. The
// wrapped function stays deterministic and concurrency-safe whenever
// the base is.
func Measure(s *Scenario, base func(*explore.Config) (scenario.Metrics, error)) func(*explore.Config) (scenario.Metrics, error) {
	return func(c *explore.Config) (scenario.Metrics, error) {
		m, err := base(c)
		if err != nil {
			return m, err
		}
		m.Survival = s.Survival(c)
		return m, nil
	}
}

// Namespace is the memo/canonical-key namespace for an attack-scored
// run: attack scenarios rescore every vector, so they must never share
// memo entries with the plain performance run of the same workload.
func Namespace(s *Scenario, workload string) string {
	return fmt.Sprintf("attack/%s@%s", s.name, workload)
}
