// Package flexos is a Go reproduction of "FlexOS: Towards Flexible OS
// Isolation" (Lefeuvre et al., ASPLOS 2022): a library operating system
// whose compartmentalization and protection profile is chosen at build
// time rather than design time.
//
// The package is the public face of the system. It lets users:
//
//   - assemble a Catalog of OS components (micro-libraries) — the
//     repository ships the paper's full set: a TCP/IP stack, a VFS with
//     ramfs, a scheduler surface, a time subsystem, a C library, and four
//     applications (Redis, Nginx, SQLite, iPerf miniatures);
//   - describe a safety configuration (an ImageSpec or the paper's
//     configuration-file format): which components share which
//     compartment, which isolation mechanism backs the boundaries (NONE,
//     Intel MPK, EPT/VMs, CHERI), which gate flavor and data sharing
//     strategy to use (light/full gates; DSS, shared heap or shared
//     stacks), and per-component software hardening (CFI, KASan, UBSan,
//     stack protector);
//   - Build the configuration into an Image and run workloads on its
//     deterministic simulated machine; and
//   - explore a whole design space with partial safety ordering through
//     the Query builder — any number of simultaneous budget constraints,
//     context cancellation, optional streaming of results — obtaining
//     the safest configurations that satisfy every constraint.
//
// Everything executes on a simulated machine with a cycle-accurate cost
// model calibrated against the paper's Xeon Silver 4114 measurements, so
// experiments are deterministic and fast while reproducing the paper's
// performance shapes. See DESIGN.md for the substitution map and
// EXPERIMENTS.md for paper-vs-measured results.
package flexos

import (
	"context"
	"fmt"

	"flexos/internal/attack"
	"flexos/internal/config"
	"flexos/internal/core"
	"flexos/internal/explore"
	"flexos/internal/harden"
	"flexos/internal/isolation"
	"flexos/internal/libc"
	"flexos/internal/machine"
	"flexos/internal/netstack"
	"flexos/internal/oslib"
	"flexos/internal/ramfs"
	"flexos/internal/scenario"
	"flexos/internal/store"
	"flexos/internal/synth"
	"flexos/internal/timesys"
	"flexos/internal/vfs"

	iperfapp "flexos/internal/apps/iperf"
	nginxapp "flexos/internal/apps/nginx"
	redisapp "flexos/internal/apps/redis"
	sqliteapp "flexos/internal/apps/sqlite"
)

// Core types re-exported for users of the public API.
type (
	// Catalog is the pool of available OS components.
	Catalog = core.Catalog
	// Component is one micro-library.
	Component = core.Component
	// Func is one component function.
	Func = core.Func
	// SharedVar is a __shared data annotation.
	SharedVar = core.SharedVar
	// Ctx is the execution context passed to component functions.
	Ctx = core.Ctx
	// Image is a built FlexOS system.
	Image = core.Image
	// ImageSpec is a build-time safety configuration.
	ImageSpec = core.ImageSpec
	// CompSpec describes one compartment of an ImageSpec.
	CompSpec = core.CompSpec
	// Report describes a built image (layout, gates, TCB).
	Report = core.Report
	// Config is a parsed configuration file.
	Config = config.Config
	// ConfigCompartment is one compartment declaration of a Config.
	ConfigCompartment = config.Compartment
	// ConfigLibAssignment maps a library into a compartment in a Config.
	ConfigLibAssignment = config.LibAssignment
	// CostModel is the simulated machine's cycle cost model.
	CostModel = machine.CostModel
	// HardeningSet is a set of software hardening techniques.
	HardeningSet = harden.Set
	// GateMode selects a gate flavor (light / full).
	GateMode = isolation.GateMode
	// Sharing selects the stack-data sharing strategy.
	Sharing = isolation.Sharing
	// ExploreConfig is one point of an exploration space.
	ExploreConfig = explore.Config
	// ExploreResult is the outcome of a design-space exploration.
	ExploreResult = explore.Result
	// ExploreMeasurement is one decided configuration of an
	// ExploreResult (and the value a streaming query yields from).
	ExploreMeasurement = explore.Measurement
	// ExploreOptions configures the deprecated Explore* entry points.
	//
	// Deprecated: build a Query instead.
	ExploreOptions = explore.Options
	// ExploreMemo is a measurement cache shared across explorations,
	// keyed by canonical configuration identity.
	ExploreMemo = explore.Memo
	// ExploreConstraint is one feasibility bound of a Query: the
	// metric's value must satisfy `value Op Bound`.
	ExploreConstraint = explore.Constraint
	// ConstraintOp is a constraint direction (AtLeast / AtMost).
	ConstraintOp = explore.Op
	// MeasureError is the typed error a failed measurement surfaces,
	// carrying the failing configuration's ID, canonical key and label.
	MeasureError = explore.MeasureError
	// ExploreShard selects one deterministic slice of a configuration
	// space for distributed exploration (see Query.Shard): the Index-th
	// of Count order-preserving, pairwise-disjoint contiguous
	// partitions of the canonical enumeration.
	ExploreShard = explore.Shard
	// MergeConflictError is the typed error MergeStores returns when
	// two input stores disagree on a record: it names the conflicting
	// key, its content address, both source directories and both metric
	// vectors.
	MergeConflictError = store.ConflictError
	// Metrics is the multi-metric vector one workload run produces:
	// throughput, p50/p99/max latency, peak simulated memory, boot
	// cycles.
	Metrics = scenario.Metrics
	// Metric selects the Metrics dimension a budget applies to.
	Metric = scenario.Metric
	// Workload runs on a built configuration and reports Metrics.
	Workload = scenario.Workload
	// Scenario is one entry of the shipped workload library (Redis
	// GET/SET mixes, Nginx keepalive mixes, iPerf stream counts,
	// SQLite transaction batches).
	Scenario = scenario.Scenario
	// PhasedScenario is a time-varying workload: an ordered phase
	// schedule over library scenarios ("redis-get90*3+redis-get50"),
	// merged under worst-case provisioning semantics. See ParsePhased.
	PhasedScenario = scenario.Phased
)

// Budget metrics for Query constraints (and the deprecated
// ExploreMetrics / ExploreScenario).
const (
	MetricThroughput = scenario.MetricThroughput
	MetricP50        = scenario.MetricP50
	MetricP99        = scenario.MetricP99
	MetricMax        = scenario.MetricMax
	MetricPeakMem    = scenario.MetricPeakMem
	MetricBoot       = scenario.MetricBoot
	MetricSurvival   = scenario.MetricSurvival
)

// Constraint directions for Query.Constrain: AtLeast is a floor (the
// natural direction for throughput), AtMost a ceiling (the natural
// direction for latency, memory and boot cost).
const (
	AtLeast = explore.AtLeast
	AtMost  = explore.AtMost
)

// Typed exploration errors. Query.Run returns an error wrapping
// ErrCanceled when its context is canceled or times out, and one
// wrapping ErrNoFeasible (alongside the fully-populated result) when
// no configuration satisfies every constraint.
var (
	ErrCanceled   = explore.ErrCanceled
	ErrNoFeasible = explore.ErrNoFeasible
)

// ParseConstraint parses the CLI constraint syntax "metric>=bound" /
// "metric<=bound" (e.g. "throughput>=500000", "p99<=2.5") into a
// Query constraint.
func ParseConstraint(s string) (ExploreConstraint, error) { return explore.ParseConstraint(s) }

// NaturalOp returns the direction a budget on the metric traditionally
// uses: a floor (AtLeast) for higher-is-better metrics, a ceiling
// (AtMost) otherwise.
func NaturalOp(m Metric) ConstraintOp { return explore.NaturalOp(m) }

// ParseShard parses the CLI shard syntax "index/count" with
// 0 <= index < count (e.g. "0/4") into a Query.Shard selection.
func ParseShard(s string) (ExploreShard, error) { return explore.ParseShard(s) }

// MemoKey composes the memo/store key of one configuration under a
// memo namespace (Query.MemoNamespace): the unit of exchange when runs
// ship partial results to each other — shard-merge via MergeStores,
// or a cluster coordinator collecting (key, metrics) records from its
// workers. Reproducible from (namespace, config) alone, on any node.
func MemoKey(namespace string, c *ExploreConfig) string { return explore.MemoKey(namespace, c) }

// MergeStores merges N result-store directories (typically one per
// exploration shard, written via Query.Cache) into a fresh store at
// outDir, validating that the inputs are disjoint — an identical
// duplicate (canonical twins across shards) is deduplicated, a
// conflicting one aborts the merge. The merged store is written in
// sorted key order, so its bytes are identical however the space was
// sharded. It returns the number of unique records written.
func MergeStores(outDir string, inDirs ...string) (int, error) {
	st, err := store.Merge(outDir, inDirs...)
	return st.Records, err
}

// Gate flavors and sharing strategies.
const (
	GateDefault = isolation.GateDefault
	GateLight   = isolation.GateLight
	GateFull    = isolation.GateFull

	ShareDSS   = isolation.ShareDSS
	ShareHeap  = isolation.ShareHeap
	ShareStack = isolation.ShareStack
)

// Hardening techniques.
const (
	CFI            = harden.CFI
	KASan          = harden.KASan
	UBSan          = harden.UBSan
	StackProtector = harden.StackProtector
	ShadowStack    = harden.ShadowStack
	AllHardening   = harden.All
)

// Attack-axis types re-exported for users of the public API.
type (
	// AttackScenario is one attack workload of the shipped library
	// (rop-chain, addr-probe, comp-leak, combined).
	AttackScenario = attack.Scenario
	// AttackSpec is a parsed attack-axis configuration: scenario,
	// machine profile and optional pinned ASLR level.
	AttackSpec = attack.Spec
	// ASLR is a layout-randomization level (entropy bits + leak
	// resistance), one dimension of the safety order.
	ASLR = isolation.ASLR
	// MachineProfile is a named cost-model/attack-surface bundle.
	MachineProfile = machine.Profile
)

// AttackByName resolves an attack scenario identifier.
func AttackByName(name string) (*AttackScenario, bool) { return attack.ByName(name) }

// AttackScenarios returns the shipped attack library, sorted by name.
func AttackScenarios() []*AttackScenario { return attack.All() }

// AttackNames lists the attack scenario names for help text.
func AttackNames() string { return attack.Names() }

// ParseAttackConfig parses the attack-axis configuration syntax
// "scenario[@profile][;aslr=off|N|N+leak]".
func ParseAttackConfig(s string) (AttackSpec, error) { return attack.ParseConfig(s) }

// AttackSpace expands a base configuration space along the attack
// axes: profile stamping, the ASLR ladder (or pinned level), and the
// CFI/shadow-stack hardening variants.
func AttackSpace(base []*ExploreConfig, spec AttackSpec) []*ExploreConfig {
	return attack.Space(base, spec)
}

// StampSpace pins every configuration of a space to a machine profile
// and, optionally, an ASLR level — without expanding it. pinASLR
// false leaves the configurations' ASLR untouched.
func StampSpace(base []*ExploreConfig, profile string, a ASLR, pinASLR bool) []*ExploreConfig {
	return attack.Stamp(base, profile, a, pinASLR)
}

// MeasureAttack wraps a measure function so every vector carries the
// attack scenario's survival score (the MetricSurvival dimension).
func MeasureAttack(s *AttackScenario, base func(*ExploreConfig) (Metrics, error)) func(*ExploreConfig) (Metrics, error) {
	return attack.Measure(s, base)
}

// AttackNamespace is the memo namespace of an attack-scored run over
// the given workload namespace.
func AttackNamespace(s *AttackScenario, workload string) string {
	return attack.Namespace(s, workload)
}

// ParseASLR parses an ASLR level spec ("off", "16", "16+leak").
func ParseASLR(s string) (ASLR, error) { return isolation.ParseASLR(s) }

// ParseProfile resolves a machine profile name ("", "x86", "riscv").
func ParseProfile(s string) (MachineProfile, error) { return machine.ParseProfile(s) }

// CanonicalProfile canonicalizes a machine profile name; the default
// profile canonicalizes to "".
func CanonicalProfile(s string) (string, error) { return machine.CanonicalProfile(s) }

// NewCatalog returns an empty component catalog.
func NewCatalog() *Catalog { return core.NewCatalog() }

// NewHardening builds a hardening set.
func NewHardening(techs ...harden.Tech) HardeningSet { return harden.NewSet(techs...) }

// DefaultCosts returns the cost model calibrated against the paper's
// Xeon Silver 4114 (Figure 11 numbers).
func DefaultCosts() CostModel { return machine.DefaultCosts() }

// Build materializes a safety configuration into a runnable image: the
// "toolchain" step that binds abstract gates to the chosen backend, lays
// out per-compartment sections and heaps, instantiates the data sharing
// strategy, and applies hardening.
func Build(cat *Catalog, spec ImageSpec) (*Image, error) { return core.Build(cat, spec) }

// ParseConfig parses the paper's configuration-file format (§3).
func ParseConfig(text string) (*Config, error) { return config.Parse(text) }

// SpecFromConfig converts a parsed configuration file into an ImageSpec
// against a catalog; unassigned libraries join the default compartment.
func SpecFromConfig(cfg *Config, cat *Catalog) (ImageSpec, error) {
	return core.SpecFromConfig(cfg, cat)
}

// RenderConfig serializes a Config back to the file format.
func RenderConfig(cfg *Config) string { return config.Render(cfg) }

// TableOne reproduces the paper's porting-effort table for a catalog.
func TableOne(cat *Catalog) []core.TableOneRow { return core.TableOne(cat) }

// FullCatalog assembles every component the repository ships: the TCB
// (boot, memory manager), the scheduler, the C library, the network
// stack, the filesystem pair, the time subsystem, and all four
// applications. Each call returns a fresh, independent catalog (component
// state is per-catalog).
func FullCatalog() *Catalog {
	cat := core.NewCatalog()
	oslib.RegisterTCB(cat)
	oslib.RegisterSched(cat)
	libc.Register(cat)
	netstack.Register(cat)
	timesys.Register(cat)
	ramfs.Register(cat)
	vfs.Register(cat)
	redisapp.Register(cat)
	nginxapp.Register(cat)
	sqliteapp.Register(cat)
	iperfapp.Register(cat)
	return cat
}

// TCBLibs are the trusted-computing-base components every image links
// into its default compartment.
func TCBLibs() []string { return []string{oslib.BootName, oslib.MMName} }

// Component names shipped by the repository, for building ImageSpecs
// programmatically.
const (
	LibBoot   = oslib.BootName
	LibMM     = oslib.MMName
	LibSched  = oslib.SchedName
	LibC      = libc.Name
	LibNet    = netstack.Name
	LibVFS    = vfs.Name
	LibRamfs  = ramfs.Name
	LibTime   = timesys.Name
	LibRedis  = redisapp.Name
	LibNginx  = nginxapp.Name
	LibSQLite = sqliteapp.Name
	LibIPerf  = iperfapp.Name
)

// RedisResult, NginxResult, SQLiteResult and IPerfResult are the
// application benchmark outcomes.
type (
	RedisResult  = redisapp.Result
	NginxResult  = nginxapp.Result
	SQLiteResult = sqliteapp.Result
	IPerfResult  = iperfapp.Result
)

// BenchmarkRedis measures Redis GET throughput under a configuration
// (the redis-benchmark analogue of Figure 6 top).
func BenchmarkRedis(spec ImageSpec, requests int) (RedisResult, error) {
	return redisapp.Benchmark(spec, requests)
}

// BenchmarkNginx measures HTTP throughput under a configuration (the wrk
// analogue of Figure 6 bottom).
func BenchmarkNginx(spec ImageSpec, requests int) (NginxResult, error) {
	return nginxapp.Benchmark(spec, requests)
}

// BenchmarkSQLite measures the INSERT workload of Figure 10.
func BenchmarkSQLite(spec ImageSpec, queries int) (SQLiteResult, error) {
	return sqliteapp.Benchmark(spec, queries)
}

// BenchmarkIPerf measures network throughput at a receive-buffer size
// (Figure 9).
func BenchmarkIPerf(spec ImageSpec, bufSize, packets int) (IPerfResult, error) {
	return iperfapp.Benchmark(spec, bufSize, packets)
}

// RedisComponents and NginxComponents list the four Figure 6 components
// of each application, in the paper's row order.
func RedisComponents() [4]string {
	return [4]string{redisapp.Name, libc.Name, oslib.SchedName, netstack.Name}
}

// NginxComponents lists Nginx's Figure 6 components.
func NginxComponents() [4]string {
	return [4]string{nginxapp.Name, libc.Name, oslib.SchedName, netstack.Name}
}

// Fig6Space generates the paper's 80-configuration design space for a
// four-component application.
func Fig6Space(components [4]string) []*ExploreConfig { return explore.Fig6Space(components) }

// Fig5Space generates the 16-configuration hardening lattice of Figure 5.
func Fig5Space(blockA, blockB []string) []*ExploreConfig {
	return explore.Fig5Space(blockA, blockB)
}

// Explore runs partial safety ordering over a configuration space with
// a throughput floor.
//
// Deprecated: use the Query builder:
// NewQuery(cfgs).MeasureScalar(measure).Floor(MetricThroughput,
// budget).Prune(prune).Run(ctx).
func Explore(cfgs []*ExploreConfig, measure func(*ExploreConfig) (float64, error), budget float64, prune bool) (*ExploreResult, error) {
	return ExploreWith(cfgs, measure, budget, ExploreOptions{Prune: prune})
}

// ExploreWith is Explore with engine options.
//
// Deprecated: use the Query builder:
// NewQuery(cfgs).MeasureScalar(measure).Floor(MetricThroughput,
// budget).Workers(n).Prune(p).Memo(m).Namespace(w).Progress(fn).Run(ctx).
func ExploreWith(cfgs []*ExploreConfig, measure func(*ExploreConfig) (float64, error), budget float64, opts ExploreOptions) (*ExploreResult, error) {
	q := NewQuery(cfgs).MeasureScalar(measure).Floor(MetricThroughput, budget).
		Workers(opts.Workers).Prune(opts.Prune).Memo(opts.Memo).
		Namespace(opts.Workload).Progress(opts.Progress)
	return compatResult(q.Run(context.Background()))
}

// NewExploreMemo returns an empty measurement cache for Query.Memo.
// Share one memo only among explorations whose measure functions agree
// for identical configurations (same application and request count);
// Query.Workload and Query.Namespace namespace several benchmarks in
// one memo.
func NewExploreMemo() *ExploreMemo { return explore.NewMemo() }

// CrossAppSpace generates a larger cross-application design space: the
// five Figure-8 partitions × 16 hardening masks × each mechanism, for
// each application quadruple (e.g. RedisComponents, NginxComponents).
// An empty mechanisms slice defaults to {intel-mpk, vm-ept}.
func CrossAppSpace(mechanisms []string, apps ...[4]string) []*ExploreConfig {
	return explore.CrossAppSpace(mechanisms, apps...)
}

// SynthSpace generates a deterministic pseudo-random configuration
// space of exactly n points: a union of per-application sub-spaces
// structurally faithful to CrossAppSpace, for exercising the
// exploration engine at 10k–1M points. The same (seed, n) always
// yields the same space, and SynthSpace(seed, m) is a prefix of
// SynthSpace(seed, n) for m <= n.
func SynthSpace(seed int64, n int) []*ExploreConfig { return synth.Space(seed, n) }

// SynthMeasure returns the deterministic, allocation-free,
// safety-monotone metric model paired with SynthSpace: a pure function
// of (seed, configuration) suitable as a Query.Measure for synthetic
// benchmarks and oracle-equivalence tests.
func SynthMeasure(seed int64) func(*ExploreConfig) (Metrics, error) { return synth.Measure(seed) }

// SynthMedianThroughput returns the median modeled throughput of a
// space under SynthMeasure(seed) — a budget that prunes roughly half
// the space.
func SynthMedianThroughput(seed int64, cfgs []*ExploreConfig) float64 {
	return synth.MedianThroughput(seed, cfgs)
}

// SynthQuantileThroughput returns the q-quantile of a space's modeled
// throughput under SynthMeasure(seed). High quantiles make tight
// monotone floors for budgeted branch-and-bound sweeps, where pruning
// pays off most.
func SynthQuantileThroughput(seed int64, cfgs []*ExploreConfig, q float64) float64 {
	return synth.QuantileThroughput(seed, cfgs, q)
}

// Scenarios returns the shipped multi-metric workload library, sorted
// by name: Redis GET/SET ratios and pipelining, Nginx static/keepalive
// mixes, iPerf stream counts, SQLite transaction batches.
func Scenarios() []*Scenario { return scenario.All() }

// ScenarioByName resolves a scenario identifier (e.g. "redis-get90").
func ScenarioByName(name string) (*Scenario, bool) { return scenario.ByName(name) }

// ParseMetric resolves a metric name ("throughput", "p50", "p99",
// "maxlat", "mem", "boot") into a Metric selector.
func ParseMetric(s string) (Metric, error) { return scenario.ParseMetric(s) }

// ParsePhased parses a phase-schedule spec — scenario names joined by
// '+', each optionally weighted with "*N", e.g.
// "redis-get90*3+redis-get50" — into a time-varying workload whose
// phases all drive one application. The result plugs into
// Query.Workload exactly like a plain Scenario.
func ParsePhased(spec string) (*PhasedScenario, error) { return scenario.ParsePhased(spec) }

// IsPhasedSpec reports whether a -scenario selector is a phase
// schedule (contains '+' or '*') rather than a plain library name.
func IsPhasedSpec(spec string) bool { return scenario.IsPhasedSpec(spec) }

// MeasureScenario adapts a workload into an exploration measure
// function: each configuration is materialized into an image spec (TCB
// libraries joining the default compartment) and run through the
// workload. Safe for concurrent use — every call builds a fresh image.
func MeasureScenario(w Workload) func(*ExploreConfig) (Metrics, error) {
	return func(c *ExploreConfig) (Metrics, error) {
		return w.Run(c.Spec(TCBLibs()))
	}
}

// ExploreMetrics explores a configuration space with full metric
// vectors under a single natural-direction budget on the chosen metric.
//
// Deprecated: use the Query builder, which supports any number of
// simultaneous constraints:
// NewQuery(cfgs).Measure(measure).Constrain(metric, op, budget).Run(ctx).
func ExploreMetrics(cfgs []*ExploreConfig, measure func(*ExploreConfig) (Metrics, error), metric Metric, budget float64, opts ExploreOptions) (*ExploreResult, error) {
	c := explore.BudgetConstraint(metric, budget)
	q := NewQuery(cfgs).Measure(measure).RankBy(metric).
		Constrain(c.Metric, c.Op, c.Bound).
		Workers(opts.Workers).Prune(opts.Prune).Memo(opts.Memo).
		Namespace(opts.Workload).Progress(opts.Progress)
	return compatResult(q.Run(context.Background()))
}

// ExploreScenario explores an application's Figure-6 configuration
// space under a scenario workload, budgeting on the given metric. The
// scenario must drive a four-component application (Redis, Nginx,
// iPerf); SQLite scenarios have no Fig6Space shape and return an error.
//
// Deprecated: use the Query builder:
// NewQuery(Fig6Space(quad)).Workload(sc).Constrain(metric, op,
// budget).Run(ctx). Unlike this wrapper's historical behavior, the
// builder namespaces the memo by scenario name and op count even when
// the caller supplies its own Namespace, so distinct scenarios never
// collide in a shared memo.
func ExploreScenario(sc *Scenario, metric Metric, budget float64, opts ExploreOptions) (*ExploreResult, error) {
	quad, ok := sc.Quad()
	if !ok {
		return nil, fmt.Errorf("flexos: scenario %s has no four-component space; use a Query over a custom space", sc.Name())
	}
	c := explore.BudgetConstraint(metric, budget)
	q := NewQuery(Fig6Space(quad)).Workload(sc).RankBy(metric).
		Constrain(c.Metric, c.Op, c.Bound).
		Workers(opts.Workers).Prune(opts.Prune).Memo(opts.Memo).
		Namespace(opts.Workload).Progress(opts.Progress)
	return compatResult(q.Run(context.Background()))
}
