package flexos_test

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"flexos"
)

// cacheQuery builds the reference query the cache/shard tests reuse: a
// deterministic scalar sweep with pruning and a throughput floor.
func cacheQuery(space []*flexos.ExploreConfig) *flexos.Query {
	return flexos.NewQuery(space).
		MeasureScalar(syntheticScalar).
		Namespace("cache-test").
		Floor(flexos.MetricThroughput, 500).
		Prune(true).
		Workers(4)
}

func sameOutcome(t *testing.T, name string, a, b *flexos.ExploreResult) {
	t.Helper()
	if !reflect.DeepEqual(a.Safest, b.Safest) {
		t.Fatalf("%s: safest %v vs %v", name, a.Safest, b.Safest)
	}
	for i := range a.Measurements {
		x, y := a.Measurements[i], b.Measurements[i]
		if x.Perf != y.Perf || x.Metrics != y.Metrics || x.Evaluated != y.Evaluated || x.Pruned != y.Pruned {
			t.Fatalf("%s: measurement %d diverges: %+v vs %+v", name, i, x, y)
		}
	}
}

func TestQueryCacheWarmRerunIsByteIdenticalAndFullyCached(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	space := flexos.Fig6Space(flexos.RedisComponents())

	cold, err := cacheQuery(space).Cache(dir).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Evaluated == 0 {
		t.Fatal("cold run measured nothing")
	}

	warm, err := cacheQuery(flexos.Fig6Space(flexos.RedisComponents())).Cache(dir).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Evaluated != 0 {
		t.Fatalf("warm run re-measured %d configs", warm.Evaluated)
	}
	if warm.MemoHits != cold.Evaluated+cold.MemoHits {
		t.Fatalf("warm hits %d, want %d", warm.MemoHits, cold.Evaluated+cold.MemoHits)
	}
	sameOutcome(t, "warm-vs-cold", warm, cold)

	// A plain uncached run agrees too: the cache changes statistics,
	// never results.
	plain, err := cacheQuery(flexos.Fig6Space(flexos.RedisComponents())).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "plain-vs-cold", plain, cold)
}

func TestQueryShardedCachesMergeIntoWarmFullRun(t *testing.T) {
	base := t.TempDir()
	const shards = 3

	cold, err := cacheQuery(flexos.Fig6Space(flexos.RedisComponents())).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	dirs := make([]string, shards)
	for i := 0; i < shards; i++ {
		dirs[i] = filepath.Join(base, "shard", string(rune('0'+i)))
		res, err := cacheQuery(flexos.Fig6Space(flexos.RedisComponents())).
			Shard(i, shards).Cache(dirs[i]).Run(context.Background())
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if res.Total >= cold.Total {
			t.Fatalf("shard %d covered %d configs, want a strict slice of %d", i, res.Total, cold.Total)
		}
	}

	merged := filepath.Join(base, "merged")
	n, err := flexos.MergeStores(merged, dirs...)
	if err != nil {
		t.Fatal(err)
	}
	if n < cold.Evaluated {
		t.Fatalf("merged %d records, fewer than the cold run's %d measurements", n, cold.Evaluated)
	}

	warm, err := cacheQuery(flexos.Fig6Space(flexos.RedisComponents())).
		CacheReadOnly(merged).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Evaluated != 0 {
		t.Fatalf("merged warm run re-measured %d configs: shard union must cover the full run", warm.Evaluated)
	}
	sameOutcome(t, "merged-vs-cold", warm, cold)
}

func TestQueryStreamShardYieldsOnlyTheSlice(t *testing.T) {
	full := flexos.Fig6Space(flexos.RedisComponents())
	seq, final := cacheQuery(flexos.Fig6Space(flexos.RedisComponents())).
		Shard(1, 3).Stream(context.Background())
	var got int
	for range seq {
		got++
	}
	res, err := final()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total >= len(full) || res.Total == 0 {
		t.Fatalf("shard stream covered %d configs, want a strict nonempty slice of %d", res.Total, len(full))
	}
	if got == 0 || got > res.Total {
		t.Fatalf("stream yielded %d pairs for a %d-config shard", got, res.Total)
	}
}

func TestQueryShardOutOfRangeFailsAtRun(t *testing.T) {
	q := cacheQuery(flexos.Fig6Space(flexos.RedisComponents())).Shard(4, 4)
	if _, err := q.Run(context.Background()); err == nil {
		t.Fatal("want error for an out-of-range shard")
	}
}

func TestQueryCacheAndMemoAreExclusive(t *testing.T) {
	q := cacheQuery(flexos.Fig6Space(flexos.RedisComponents())).
		Memo(flexos.NewExploreMemo()).Cache(t.TempDir())
	if _, err := q.Run(context.Background()); err == nil {
		t.Fatal("want error combining Cache with Memo")
	}
}

func TestQueryCacheReadOnlyMissingDirErrors(t *testing.T) {
	q := cacheQuery(flexos.Fig6Space(flexos.RedisComponents())).
		CacheReadOnly(filepath.Join(t.TempDir(), "absent"))
	if _, err := q.Run(context.Background()); err == nil {
		t.Fatal("want error opening a missing read-only cache")
	}
}

func TestQuerySpaceHashCoversNamespaceAndSpace(t *testing.T) {
	redis := func() *flexos.Query { return cacheQuery(flexos.Fig6Space(flexos.RedisComponents())) }
	h := redis().SpaceHash()
	if h != redis().SpaceHash() {
		t.Fatal("hash not stable across builds of the same query")
	}
	if len(h) != 16 {
		t.Fatalf("hash %q: want 16 hex digits", h)
	}
	if nginx := cacheQuery(flexos.Fig6Space(flexos.NginxComponents())).SpaceHash(); nginx == h {
		t.Fatal("hash ignores the space")
	}
	if other := redis().Namespace("other").SpaceHash(); other == h {
		t.Fatal("hash ignores the namespace")
	}
	// Sharding never moves the hash: all shards of one exploration
	// must agree on the store cache key.
	if sharded := redis().Shard(1, 3).SpaceHash(); sharded != h {
		t.Fatal("hash must ignore sharding")
	}
}

func TestQueryStreamWithCacheIsByteIdenticalWarm(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	collect := func() ([]string, *flexos.ExploreResult) {
		var lines []string
		seq, final := cacheQuery(flexos.Fig6Space(flexos.RedisComponents())).Cache(dir).Stream(context.Background())
		for cfg, m := range seq {
			lines = append(lines, cfg.Label()+"|"+m.String())
		}
		res, err := final()
		if err != nil {
			t.Fatal(err)
		}
		return lines, res
	}
	coldLines, cold := collect()
	warmLines, warm := collect()
	if warm.Evaluated != 0 {
		t.Fatalf("warm stream re-measured %d configs", warm.Evaluated)
	}
	if !reflect.DeepEqual(coldLines, warmLines) {
		t.Fatal("streamed output differs between cold and warm runs")
	}
	sameOutcome(t, "stream-warm-vs-cold", warm, cold)
}
